//! Batch evaluation: one compiled environment, many initial
//! configurations.
//!
//! The GA fitness workload evaluates a single genome on dozens to hundreds
//! of initial configurations. [`BatchRunner`] compiles the genome and the
//! environment once (neighbour tables, obstacle bitset, colour planes,
//! per-phase FSM tables) and shares them across every run through an
//! [`Arc`], so per-configuration cost is placement + simulation only.
//! `BatchRunner` is `Sync`: `outcome_for` takes `&self`, which lets
//! callers fan configurations out over threads (e.g. with
//! `a2a_ga::parallel_map`).

use crate::behaviour::Behaviour;
use crate::config::WorldConfig;
use crate::dispatch::{Dispatch, DispatchJob};
use crate::error::SimError;
use crate::init::InitialConfig;
use crate::kernel::{FastWorld, KernelEnv};
use crate::multi::{preferred_chunk, MultiWorld};
use crate::run::RunOutcome;
use crate::sliced::{preferred_sliced_chunk, SlicedWorld};
use a2a_fsm::Genome;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Worlds kept warm per thread (single-run and multi-run pools each).
/// GA workers interleave at most a handful of runners (one per genome
/// being pruned in a block), so a small pool already gives near-perfect
/// reuse; anything colder is rebuilt.
const WORLD_POOL_LIMIT: usize = 4;

thread_local! {
    /// Per-thread pool of compiled single-run worlds, most recently
    /// used at the back. Each pooled world pins its own
    /// `Arc<KernelEnv>`, so matching by pointer identity
    /// ([`FastWorld::shares_env`]) cannot alias a recycled allocation.
    /// A `VecDeque` makes the cold-end eviction O(1) — with a `Vec`,
    /// every eviction shifted the whole pool.
    static WORLD_POOL: RefCell<VecDeque<FastWorld>> = const { RefCell::new(VecDeque::new()) };

    /// Per-thread pool of multi-run worlds, same discipline.
    static MULTI_POOL: RefCell<VecDeque<MultiWorld>> = const { RefCell::new(VecDeque::new()) };

    /// Per-thread pool of bit-sliced worlds, same discipline.
    static SLICED_POOL: RefCell<VecDeque<SlicedWorld>> = const { RefCell::new(VecDeque::new()) };
}

/// Counts one cold-entry eviction in the registry (when metrics are on).
fn count_eviction() {
    if a2a_obs::metrics_enabled() {
        a2a_obs::global().counter("kernel.pool.evictions").incr();
    }
}

/// Takes the most recent pooled world compiled from `env`, if any.
fn take_pooled(env: &Arc<KernelEnv>) -> Option<FastWorld> {
    WORLD_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.iter().rposition(|w| w.shares_env(env)).and_then(|i| pool.remove(i))
    })
}

/// Returns a world to this thread's pool, evicting the coldest entry
/// when full.
fn return_pooled(world: FastWorld) {
    WORLD_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() >= WORLD_POOL_LIMIT {
            pool.pop_front();
            count_eviction();
        }
        pool.push_back(world);
    });
}

/// Takes the most recent pooled sliced world compiled from `env`, if any.
fn take_pooled_sliced(env: &Arc<KernelEnv>) -> Option<SlicedWorld> {
    SLICED_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.iter().rposition(|w| w.shares_env(env)).and_then(|i| pool.remove(i))
    })
}

/// Returns a sliced world to this thread's pool, evicting the coldest
/// entry when full.
fn return_pooled_sliced(world: SlicedWorld) {
    SLICED_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() >= WORLD_POOL_LIMIT {
            pool.pop_front();
            count_eviction();
        }
        pool.push_back(world);
    });
}

/// Takes the most recent pooled multi-world compiled from `env`, if any.
fn take_pooled_multi(env: &Arc<KernelEnv>) -> Option<MultiWorld> {
    MULTI_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.iter().rposition(|w| w.shares_env(env)).and_then(|i| pool.remove(i))
    })
}

/// Returns a multi-world to this thread's pool, evicting the coldest
/// entry when full.
fn return_pooled_multi(world: MultiWorld) {
    MULTI_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() >= WORLD_POOL_LIMIT {
            pool.pop_front();
            count_eviction();
        }
        pool.push_back(world);
    });
}

/// Evaluates one behaviour over many initial configurations using the
/// bit-packed [`FastWorld`] kernel.
///
/// # Examples
///
/// ```
/// use a2a_sim::{BatchRunner, InitialConfig, WorldConfig};
/// use a2a_fsm::best_t_agent;
/// use a2a_grid::GridKind;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), a2a_sim::SimError> {
/// let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
/// let runner = BatchRunner::from_genome(&cfg, best_t_agent(), 200)?;
/// let mut rng = SmallRng::seed_from_u64(3);
/// let init = InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng)?;
/// assert!(runner.outcome_for(&init)?.is_successful());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    env: Arc<KernelEnv>,
    t_max: u32,
    /// The executor [`BatchRunner::run_all`] shards chunk-blocks
    /// across; `None` (the default) runs everything on the calling
    /// thread. Results are committed in submission order either way,
    /// so outcomes are bit-identical across executors.
    dispatch: Option<Arc<dyn Dispatch>>,
}

impl BatchRunner {
    /// Compiles `behaviour` against `config` for runs capped at `t_max`
    /// counted steps.
    ///
    /// # Errors
    ///
    /// The environment checks of [`crate::World::with_behaviour`]:
    /// inconsistent behaviours, grid-kind mismatch, invalid obstacles or
    /// colour patterns.
    pub fn new(
        config: &WorldConfig,
        behaviour: &Behaviour,
        t_max: u32,
    ) -> Result<Self, SimError> {
        Ok(Self { env: Arc::new(KernelEnv::new(config, behaviour)?), t_max, dispatch: None })
    }

    /// Attaches a parallel executor: [`BatchRunner::run_all`] (and the
    /// engine-forcing multi seams) shard chunk-sized blocks of the
    /// configuration set across it, committing block results in
    /// submission order — outcomes stay bit-identical to the serial
    /// path (the differential suite enforces this). Pass the
    /// GA worker pool through its `Dispatch` impl; detach with
    /// [`BatchRunner::without_dispatch`].
    #[must_use]
    pub fn with_dispatch(mut self, dispatch: Arc<dyn Dispatch>) -> Self {
        self.dispatch = Some(dispatch);
        self
    }

    /// Drops any attached executor; `run_all` runs inline again.
    #[must_use]
    pub fn without_dispatch(mut self) -> Self {
        self.dispatch = None;
        self
    }

    /// Worker threads the attached executor offers (`1` without one).
    #[must_use]
    pub fn dispatch_workers(&self) -> usize {
        self.dispatch.as_ref().map_or(1, |d| d.workers().max(1))
    }

    /// [`BatchRunner::new`] for the paper's single-FSM behaviour.
    ///
    /// # Errors
    ///
    /// As [`BatchRunner::new`].
    pub fn from_genome(config: &WorldConfig, genome: Genome, t_max: u32) -> Result<Self, SimError> {
        Self::new(config, &Behaviour::Single(genome), t_max)
    }

    /// The run horizon in counted steps.
    #[must_use]
    pub fn t_max(&self) -> u32 {
        self.t_max
    }

    /// Runs one initial configuration to completion (or the horizon),
    /// reusing a pooled per-thread [`FastWorld`] when one matches this
    /// runner's environment — the steady state of a batch performs no
    /// per-run heap allocation (see [`FastWorld::allocation_count`]).
    /// Outcomes are identical to [`BatchRunner::fresh_outcome_for`].
    ///
    /// # Errors
    ///
    /// The placement checks of [`crate::World::with_behaviour`]: invalid
    /// positions or directions, duplicates, agents on obstacles.
    pub fn outcome_for(&self, init: &InitialConfig) -> Result<RunOutcome, SimError> {
        let mut world = match take_pooled(&self.env) {
            Some(mut world) => {
                // A placement error may leave the world half-rebuilt;
                // drop it rather than pooling an inconsistent arena.
                world.reset_from(init)?;
                if a2a_obs::metrics_enabled() {
                    a2a_obs::global().counter("kernel.pool.reuse").incr();
                }
                world
            }
            None => {
                if a2a_obs::metrics_enabled() {
                    a2a_obs::global().counter("kernel.pool.fresh").incr();
                }
                FastWorld::from_env(Arc::clone(&self.env), init)?
            }
        };
        let outcome = world.run(self.t_max);
        return_pooled(world);
        Ok(outcome)
    }

    /// [`BatchRunner::outcome_for`] without the per-thread world pool: a
    /// fresh [`FastWorld`] per call. The pre-reuse baseline, kept for
    /// benchmarks and differential tests against the pooled path.
    ///
    /// # Errors
    ///
    /// As [`BatchRunner::outcome_for`].
    pub fn fresh_outcome_for(&self, init: &InitialConfig) -> Result<RunOutcome, SimError> {
        let mut world = FastWorld::from_env(Arc::clone(&self.env), init)?;
        Ok(world.run(self.t_max))
    }

    /// Runs per lockstep chunk this runner prefers for configurations
    /// of roughly `k` agents: as many as keep a [`MultiWorld`] chunk's
    /// working set cache-resident. Callers that fan
    /// [`BatchRunner::run_all`] out over threads should split the
    /// configuration set at this granularity.
    #[must_use]
    pub fn chunk_size(&self, k: usize) -> usize {
        preferred_chunk(&self.env, k)
    }

    /// Runs per bit-sliced chunk this runner prefers for uniform
    /// batches of `k`-agent configurations — whole lanes of 64 runs,
    /// as many as keep a [`SlicedWorld`] chunk's working set
    /// cache-resident.
    #[must_use]
    pub fn sliced_chunk_size(&self, k: usize) -> usize {
        preferred_sliced_chunk(&self.env, k)
    }

    /// Whether `inits` is a batch shape the bit-sliced engine
    /// *accepts*: a uniform agent count `1 ≤ k ≤ 1024` across 64 or
    /// more configurations (at least one full lane).
    ///
    /// Eligibility, not preference: paired benchmarks show the
    /// run-transposed engine trailing the run-major one on every
    /// measured workload (divergent runs defeat its word-parallel
    /// merges — see DESIGN.md §11), so [`BatchRunner::run_all`] keeps
    /// every batch on [`MultiWorld`] and the sliced path stays an
    /// explicit opt-in via [`BatchRunner::run_all_sliced`].
    #[must_use]
    pub fn sliced_eligible(&self, inits: &[InitialConfig]) -> bool {
        let Some(k) = inits.first().map(InitialConfig::agent_count) else {
            return false;
        };
        inits.len() >= 64
            && (1..=1024).contains(&k)
            && inits.iter().all(|i| i.agent_count() == k)
    }

    /// Runs every configuration in order on the calling thread through
    /// the fastest measured lockstep engine — the run-major
    /// [`MultiWorld`] for every batch shape (see
    /// [`BatchRunner::sliced_eligible`] for why the bit-sliced engine
    /// is opt-in only). Outcomes are bit-identical to mapping
    /// [`BatchRunner::outcome_for`] over the configurations. For
    /// parallel evaluation, fan chunk-sized sub-slices of the
    /// configuration set out over a thread pool — the runner is
    /// `Sync`.
    ///
    /// # Errors
    ///
    /// The first placement error encountered, as [`BatchRunner::outcome_for`].
    pub fn run_all(&self, inits: &[InitialConfig]) -> Result<Vec<RunOutcome>, SimError> {
        self.run_all_multi(inits)
    }

    /// [`BatchRunner::run_all`] pinned to the run-major [`MultiWorld`]
    /// engine, in chunks of [`BatchRunner::chunk_size`] runs with a
    /// pooled per-thread world per chunk. The engine-forcing seam for
    /// benchmarks and differential suites; [`BatchRunner::run_all`] is
    /// the right call everywhere else.
    ///
    /// # Errors
    ///
    /// As [`BatchRunner::run_all`].
    pub fn run_all_multi(&self, inits: &[InitialConfig]) -> Result<Vec<RunOutcome>, SimError> {
        self.run_all_multi_with(inits, false)
    }

    /// [`BatchRunner::run_all_multi`] with the engine's dense-scan
    /// compatibility mode forced on ([`MultiWorld::set_dense`]): the
    /// pre-frontier full-`k` exchange sweep, kept as the kernel
    /// bench's in-process baseline for `frontier_speedup`. Outcomes
    /// are bit-identical to the default path; only the cost differs.
    ///
    /// # Errors
    ///
    /// As [`BatchRunner::run_all`].
    pub fn run_all_multi_dense(&self, inits: &[InitialConfig]) -> Result<Vec<RunOutcome>, SimError> {
        self.run_all_multi_with(inits, true)
    }

    fn run_all_multi_with(
        &self,
        inits: &[InitialConfig],
        dense: bool,
    ) -> Result<Vec<RunOutcome>, SimError> {
        let _span = a2a_obs::Span::enter("batch.run_all");
        // An empty batch must not consult `inits[0]` for chunk sizing
        // (it used to silently size chunks for k = 1).
        let Some(first) = inits.first() else {
            return Ok(Vec::new());
        };
        let chunk = self.chunk_size(first.agent_count());
        let blocks = inits.len().div_ceil(chunk);
        let parallel = self
            .dispatch
            .as_ref()
            .filter(|d| d.workers() > 1 && blocks > 1);
        if a2a_obs::metrics_enabled() {
            let occupied = parallel.map_or(1, |d| d.workers().min(blocks));
            a2a_obs::global().gauge("kernel.dispatch.workers").set(occupied as i64);
        }
        let outcomes = match parallel {
            Some(dispatch) => self.run_blocks_parallel(dispatch, inits, chunk, dense)?,
            None => {
                let mut outcomes: Vec<RunOutcome> = Vec::with_capacity(inits.len());
                for block in inits.chunks(chunk) {
                    outcomes.extend(self.run_block_multi(block, dense)?);
                }
                outcomes
            }
        };
        self.log_run_all(&outcomes);
        Ok(outcomes)
    }

    /// One chunk-block through a pooled per-thread [`MultiWorld`] —
    /// the unit of work both the serial loop and the parallel
    /// dispatcher execute.
    fn run_block_multi(
        &self,
        block: &[InitialConfig],
        dense: bool,
    ) -> Result<Vec<RunOutcome>, SimError> {
        let mut world = match take_pooled_multi(&self.env) {
            Some(world) => {
                if a2a_obs::metrics_enabled() {
                    a2a_obs::global().counter("kernel.pool.reuse").incr();
                }
                world
            }
            None => {
                if a2a_obs::metrics_enabled() {
                    a2a_obs::global().counter("kernel.pool.fresh").incr();
                }
                MultiWorld::from_env(Arc::clone(&self.env))
            }
        };
        world.set_dense(dense);
        // A load error may leave the world half-loaded; drop it
        // rather than pooling an inconsistent arena.
        world.load(block)?;
        let outcomes = world.run(self.t_max);
        // Pooled worlds always rest in frontier mode (the default).
        world.set_dense(false);
        return_pooled_multi(world);
        Ok(outcomes)
    }

    /// Shards chunk-blocks across `dispatch` and commits the results
    /// in submission order, which makes the outcome vector — and the
    /// first reported error — independent of scheduling. Jobs only
    /// write their own pre-assigned slot; a slot the executor failed
    /// to deliver (e.g. a worker died mid-batch) is detected by the
    /// commit loop and re-run inline, so the result is total.
    fn run_blocks_parallel(
        &self,
        dispatch: &Arc<dyn Dispatch>,
        inits: &[InitialConfig],
        chunk: usize,
        dense: bool,
    ) -> Result<Vec<RunOutcome>, SimError> {
        type Slot = Mutex<Option<Result<Vec<RunOutcome>, SimError>>>;
        let blocks: Arc<Vec<Vec<InitialConfig>>> =
            Arc::new(inits.chunks(chunk).map(<[InitialConfig]>::to_vec).collect());
        let slots: Arc<Vec<Slot>> =
            Arc::new((0..blocks.len()).map(|_| Mutex::new(None)).collect());
        let jobs: Vec<DispatchJob> = (0..blocks.len())
            .map(|b| {
                let blocks = Arc::clone(&blocks);
                let slots = Arc::clone(&slots);
                let runner = self.clone();
                Box::new(move || {
                    let result = runner.run_block_multi(&blocks[b], dense);
                    *slots[b].lock().expect("slot poisoned") = Some(result);
                }) as DispatchJob
            })
            .collect();
        dispatch.run_jobs(jobs);
        let mut outcomes: Vec<RunOutcome> = Vec::with_capacity(inits.len());
        for (b, slot) in slots.iter().enumerate() {
            let result = match slot.lock().expect("slot poisoned").take() {
                Some(result) => result,
                // Undelivered: repair deterministically on this thread.
                None => self.run_block_multi(&blocks[b], dense),
            };
            outcomes.extend(result?);
        }
        Ok(outcomes)
    }

    /// [`BatchRunner::run_all`] pinned to the bit-sliced
    /// [`SlicedWorld`] engine, in chunks of
    /// [`BatchRunner::sliced_chunk_size`] runs (whole lanes of 64)
    /// with a pooled per-thread world per chunk. Requires a uniform
    /// agent count across the batch; like `run_all_multi`, this is an
    /// engine-forcing seam — prefer [`BatchRunner::run_all`].
    ///
    /// # Errors
    ///
    /// As [`BatchRunner::run_all`], plus [`SimError::SpecMismatch`]
    /// for a batch whose configurations disagree on the agent count.
    pub fn run_all_sliced(&self, inits: &[InitialConfig]) -> Result<Vec<RunOutcome>, SimError> {
        let _span = a2a_obs::Span::enter("batch.run_all");
        // An empty batch must not consult `inits[0]` for chunk sizing
        // (it used to silently size chunks for k = 1).
        let Some(first) = inits.first() else {
            return Ok(Vec::new());
        };
        let chunk = self.sliced_chunk_size(first.agent_count());
        let mut outcomes: Vec<RunOutcome> = Vec::with_capacity(inits.len());
        for block in inits.chunks(chunk) {
            let mut world = match take_pooled_sliced(&self.env) {
                Some(world) => {
                    if a2a_obs::metrics_enabled() {
                        a2a_obs::global().counter("kernel.pool.reuse").incr();
                    }
                    world
                }
                None => {
                    if a2a_obs::metrics_enabled() {
                        a2a_obs::global().counter("kernel.pool.fresh").incr();
                    }
                    SlicedWorld::from_env(Arc::clone(&self.env))
                }
            };
            // A load error may leave the world half-loaded; drop it
            // rather than pooling an inconsistent arena.
            world.load(block)?;
            outcomes.extend(world.run(self.t_max));
            return_pooled_sliced(world);
        }
        self.log_run_all(&outcomes);
        Ok(outcomes)
    }

    /// The shared `batch.run_all` debug summary.
    fn log_run_all(&self, outcomes: &[RunOutcome]) {
        a2a_obs::event!(a2a_obs::Level::Debug, "batch.run_all",
            "configs" => outcomes.len(),
            "successful" => outcomes.iter().filter(|o| o.is_successful()).count(),
            "t_max" => self.t_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::simulate;
    use a2a_fsm::best_agent;
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batch_outcomes_equal_oracle_simulate() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let cfg = WorldConfig::paper(kind, 16);
            let genome = best_agent(kind);
            let runner = BatchRunner::from_genome(&cfg, genome.clone(), 200).unwrap();
            let mut rng = SmallRng::seed_from_u64(77);
            for _ in 0..10 {
                let init =
                    InitialConfig::random(cfg.lattice, kind, 12, &[], &mut rng).unwrap();
                let fast = runner.outcome_for(&init).unwrap();
                let slow = simulate(&cfg, genome.clone(), &init, 200).unwrap();
                assert_eq!(fast, slow, "{kind}");
            }
        }
    }

    #[test]
    fn runner_is_shareable_across_threads() {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let inits: Vec<InitialConfig> = (0..8)
            .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap())
            .collect();
        let serial = runner.run_all(&inits).unwrap();
        let parallel: Vec<RunOutcome> = std::thread::scope(|scope| {
            inits
                .iter()
                .map(|init| scope.spawn(|| runner.outcome_for(init).unwrap()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn environment_errors_surface_at_construction() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        assert!(matches!(
            BatchRunner::from_genome(&cfg, best_agent(GridKind::Triangulate), 200),
            Err(SimError::SpecMismatch(_))
        ));
    }

    #[test]
    fn pooled_outcomes_equal_fresh_outcomes() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let cfg = WorldConfig::paper(kind, 16);
            let runner = BatchRunner::from_genome(&cfg, best_agent(kind), 200).unwrap();
            let mut rng = SmallRng::seed_from_u64(123);
            for k in [4usize, 16, 9, 16] {
                let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap();
                assert_eq!(
                    runner.outcome_for(&init).unwrap(),
                    runner.fresh_outcome_for(&init).unwrap(),
                    "{kind} k={k}"
                );
            }
        }
    }

    #[test]
    fn pool_keeps_interleaved_runners_separate() {
        // Two different genomes alternating on one thread: each reuse
        // must pick the world compiled for *its* environment.
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let a = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let mut wanderer = best_agent(cfg.kind);
        {
            use rand::rngs::SmallRng as R;
            use rand::SeedableRng;
            let mut rng = R::seed_from_u64(5);
            wanderer = a2a_fsm::offspring(&wanderer, a2a_fsm::MutationRates::paper(), &mut rng);
        }
        let b = BatchRunner::from_genome(&cfg, wanderer, 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..6 {
            let init = InitialConfig::random(cfg.lattice, cfg.kind, 12, &[], &mut rng).unwrap();
            assert_eq!(a.outcome_for(&init).unwrap(), a.fresh_outcome_for(&init).unwrap());
            assert_eq!(b.outcome_for(&init).unwrap(), b.fresh_outcome_for(&init).unwrap());
        }
    }

    #[test]
    fn failed_reset_does_not_poison_the_pool() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let good = InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap();
        let _ = runner.outcome_for(&good).unwrap();
        let dup = InitialConfig::new(vec![
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
        ]);
        assert!(runner.outcome_for(&dup).is_err());
        // Subsequent pooled runs still match the fresh path.
        let next = InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap();
        assert_eq!(
            runner.outcome_for(&next).unwrap(),
            runner.fresh_outcome_for(&next).unwrap()
        );
    }

    #[test]
    fn placement_errors_surface_per_configuration() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let dup = InitialConfig::new(vec![
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
        ]);
        assert!(matches!(
            runner.outcome_for(&dup),
            Err(SimError::DuplicatePosition(_))
        ));
        // run_all reports the first failing configuration's error, just
        // like the serial per-config loop did.
        let mut rng = SmallRng::seed_from_u64(2);
        let good = InitialConfig::random(cfg.lattice, cfg.kind, 4, &[], &mut rng).unwrap();
        assert!(matches!(
            runner.run_all(&[good, dup]),
            Err(SimError::DuplicatePosition(_))
        ));
    }

    #[test]
    fn run_all_routes_uniform_batches_and_engines_agree() {
        // 70 uniform configurations are sliced-eligible (and leave a
        // partial lane); the dispatcher, the forced multi path and the
        // forced sliced path must all report the same outcomes — and
        // run_all must stay on the run-major engine (the sliced path
        // is an explicit opt-in, never the routed default).
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(404);
        let inits: Vec<InitialConfig> = (0..70)
            .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng).unwrap())
            .collect();
        assert!(runner.sliced_eligible(&inits));
        let routed = runner.run_all(&inits).unwrap();
        assert_eq!(routed, runner.run_all_multi(&inits).unwrap());
        assert_eq!(routed, runner.run_all_sliced(&inits).unwrap());
        // Small or ragged batches are not even sliced-eligible.
        assert!(!runner.sliced_eligible(&inits[..63]));
        let mut ragged = inits[..64].to_vec();
        ragged[40] =
            InitialConfig::random(cfg.lattice, cfg.kind, 15, &[], &mut rng).unwrap();
        assert!(!runner.sliced_eligible(&ragged));
        assert_eq!(
            runner.run_all(&ragged).unwrap(),
            runner.run_all_multi(&ragged).unwrap()
        );
    }

    #[test]
    fn empty_batch_returns_empty_on_every_path() {
        // Regression: chunk sizing used to read `inits.first()` with a
        // k = 1 fallback, silently shaping chunks for a batch that does
        // not exist.
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        assert!(runner.run_all(&[]).unwrap().is_empty());
        assert!(runner.run_all_multi(&[]).unwrap().is_empty());
        assert!(runner.run_all_multi_dense(&[]).unwrap().is_empty());
        assert!(runner.run_all_sliced(&[]).unwrap().is_empty());
    }

    /// A real multi-threaded executor for the dispatch tests:
    /// round-robins jobs over `N` scoped threads.
    #[derive(Debug)]
    struct ThreadedDispatch(usize);

    impl crate::Dispatch for ThreadedDispatch {
        fn run_jobs(&self, jobs: Vec<crate::DispatchJob>) {
            let mut buckets: Vec<Vec<crate::DispatchJob>> =
                (0..self.0).map(|_| Vec::new()).collect();
            for (i, job) in jobs.into_iter().enumerate() {
                buckets[i % self.0].push(job);
            }
            std::thread::scope(|scope| {
                for bucket in buckets {
                    scope.spawn(move || {
                        for job in bucket {
                            job();
                        }
                    });
                }
            });
        }

        fn workers(&self) -> usize {
            self.0
        }
    }

    /// A hostile executor that silently drops every odd-indexed job —
    /// the commit loop must repair the holes inline.
    #[derive(Debug)]
    struct LossyDispatch;

    impl crate::Dispatch for LossyDispatch {
        fn run_jobs(&self, jobs: Vec<crate::DispatchJob>) {
            for (i, job) in jobs.into_iter().enumerate() {
                if i % 2 == 0 {
                    job();
                }
            }
        }

        fn workers(&self) -> usize {
            2
        }
    }

    #[test]
    fn dispatched_run_all_is_bit_identical_to_serial() {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(606);
        // Enough configurations for several chunk-blocks.
        let inits: Vec<InitialConfig> = (0..3 * runner.chunk_size(16) + 7)
            .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng).unwrap())
            .collect();
        let serial = runner.run_all(&inits).unwrap();
        let threaded = runner.clone().with_dispatch(Arc::new(ThreadedDispatch(3)));
        assert_eq!(threaded.run_all(&inits).unwrap(), serial);
        assert_eq!(threaded.run_all_multi_dense(&inits).unwrap(), serial);
        assert_eq!(threaded.dispatch_workers(), 3);
        assert_eq!(threaded.without_dispatch().dispatch_workers(), 1);
        // A lossy executor leaves holes; the ordered commit repairs
        // them inline and the result is still bit-identical.
        let lossy = runner.clone().with_dispatch(Arc::new(LossyDispatch));
        assert_eq!(lossy.run_all(&inits).unwrap(), serial);
    }

    #[test]
    fn dispatched_run_all_reports_the_first_error_in_batch_order() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(607);
        let chunk = runner.chunk_size(8);
        let mut inits: Vec<InitialConfig> = (0..3 * chunk)
            .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap())
            .collect();
        // Earlier block: a duplicate placement. Later block: an
        // out-of-field position. Batch order decides which one wins,
        // regardless of which job finishes first.
        inits[chunk + 1] = InitialConfig::new(vec![
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
        ]);
        inits[2 * chunk + 1] =
            InitialConfig::new(vec![(a2a_grid::Pos::new(99, 0), a2a_grid::Dir::new(0))]);
        let threaded = runner.clone().with_dispatch(Arc::new(ThreadedDispatch(3)));
        assert!(matches!(
            threaded.run_all(&inits),
            Err(SimError::DuplicatePosition(_))
        ));
    }

    #[test]
    fn run_all_matches_per_config_outcomes() {
        // The chunked lockstep path must be bit-identical to mapping
        // outcome_for over the set — ragged agent counts included.
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let cfg = WorldConfig::paper(kind, 16);
            let runner = BatchRunner::from_genome(&cfg, best_agent(kind), 200).unwrap();
            let mut rng = SmallRng::seed_from_u64(55);
            let inits: Vec<InitialConfig> = [16usize, 1, 8, 70, 16, 16, 2, 33]
                .iter()
                .map(|&k| InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap())
                .collect();
            let singles: Vec<RunOutcome> =
                inits.iter().map(|i| runner.outcome_for(i).unwrap()).collect();
            assert_eq!(runner.run_all(&inits).unwrap(), singles, "{kind}");
        }
    }
}

//! Batch evaluation: one compiled environment, many initial
//! configurations.
//!
//! The GA fitness workload evaluates a single genome on dozens to hundreds
//! of initial configurations. [`BatchRunner`] compiles the genome and the
//! environment once (neighbour tables, obstacle bitset, colour planes,
//! per-phase FSM tables) and shares them across every run through an
//! [`Arc`], so per-configuration cost is placement + simulation only.
//! `BatchRunner` is `Sync`: `outcome_for` takes `&self`, which lets
//! callers fan configurations out over threads (e.g. with
//! `a2a_ga::parallel_map`).

use crate::behaviour::Behaviour;
use crate::config::WorldConfig;
use crate::error::SimError;
use crate::init::InitialConfig;
use crate::kernel::{FastWorld, KernelEnv};
use crate::run::RunOutcome;
use a2a_fsm::Genome;
use std::cell::RefCell;
use std::sync::Arc;

/// Worlds kept warm per thread. GA workers interleave at most a handful
/// of runners (one per genome being pruned in a block), so a small pool
/// already gives near-perfect reuse; anything colder is rebuilt.
const WORLD_POOL_LIMIT: usize = 4;

thread_local! {
    /// Per-thread pool of compiled worlds, most recently used last.
    /// Each pooled world pins its own `Arc<KernelEnv>`, so matching by
    /// pointer identity ([`FastWorld::shares_env`]) cannot alias a
    /// recycled allocation.
    static WORLD_POOL: RefCell<Vec<FastWorld>> = const { RefCell::new(Vec::new()) };
}

/// Takes the most recent pooled world compiled from `env`, if any.
fn take_pooled(env: &Arc<KernelEnv>) -> Option<FastWorld> {
    WORLD_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.iter().rposition(|w| w.shares_env(env)).map(|i| pool.remove(i))
    })
}

/// Returns a world to this thread's pool, evicting the coldest entry
/// when full.
fn return_pooled(world: FastWorld) {
    WORLD_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() >= WORLD_POOL_LIMIT {
            pool.remove(0);
        }
        pool.push(world);
    });
}

/// Evaluates one behaviour over many initial configurations using the
/// bit-packed [`FastWorld`] kernel.
///
/// # Examples
///
/// ```
/// use a2a_sim::{BatchRunner, InitialConfig, WorldConfig};
/// use a2a_fsm::best_t_agent;
/// use a2a_grid::GridKind;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), a2a_sim::SimError> {
/// let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
/// let runner = BatchRunner::from_genome(&cfg, best_t_agent(), 200)?;
/// let mut rng = SmallRng::seed_from_u64(3);
/// let init = InitialConfig::random(cfg.lattice, cfg.kind, 16, &[], &mut rng)?;
/// assert!(runner.outcome_for(&init)?.is_successful());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    env: Arc<KernelEnv>,
    t_max: u32,
}

impl BatchRunner {
    /// Compiles `behaviour` against `config` for runs capped at `t_max`
    /// counted steps.
    ///
    /// # Errors
    ///
    /// The environment checks of [`crate::World::with_behaviour`]:
    /// inconsistent behaviours, grid-kind mismatch, invalid obstacles or
    /// colour patterns.
    pub fn new(
        config: &WorldConfig,
        behaviour: &Behaviour,
        t_max: u32,
    ) -> Result<Self, SimError> {
        Ok(Self { env: Arc::new(KernelEnv::new(config, behaviour)?), t_max })
    }

    /// [`BatchRunner::new`] for the paper's single-FSM behaviour.
    ///
    /// # Errors
    ///
    /// As [`BatchRunner::new`].
    pub fn from_genome(config: &WorldConfig, genome: Genome, t_max: u32) -> Result<Self, SimError> {
        Self::new(config, &Behaviour::Single(genome), t_max)
    }

    /// The run horizon in counted steps.
    #[must_use]
    pub fn t_max(&self) -> u32 {
        self.t_max
    }

    /// Runs one initial configuration to completion (or the horizon),
    /// reusing a pooled per-thread [`FastWorld`] when one matches this
    /// runner's environment — the steady state of a batch performs no
    /// per-run heap allocation (see [`FastWorld::allocation_count`]).
    /// Outcomes are identical to [`BatchRunner::fresh_outcome_for`].
    ///
    /// # Errors
    ///
    /// The placement checks of [`crate::World::with_behaviour`]: invalid
    /// positions or directions, duplicates, agents on obstacles.
    pub fn outcome_for(&self, init: &InitialConfig) -> Result<RunOutcome, SimError> {
        let mut world = match take_pooled(&self.env) {
            Some(mut world) => {
                // A placement error may leave the world half-rebuilt;
                // drop it rather than pooling an inconsistent arena.
                world.reset_from(init)?;
                if a2a_obs::metrics_enabled() {
                    a2a_obs::global().counter("kernel.pool.reuse").incr();
                }
                world
            }
            None => {
                if a2a_obs::metrics_enabled() {
                    a2a_obs::global().counter("kernel.pool.fresh").incr();
                }
                FastWorld::from_env(Arc::clone(&self.env), init)?
            }
        };
        let outcome = world.run(self.t_max);
        return_pooled(world);
        Ok(outcome)
    }

    /// [`BatchRunner::outcome_for`] without the per-thread world pool: a
    /// fresh [`FastWorld`] per call. The pre-reuse baseline, kept for
    /// benchmarks and differential tests against the pooled path.
    ///
    /// # Errors
    ///
    /// As [`BatchRunner::outcome_for`].
    pub fn fresh_outcome_for(&self, init: &InitialConfig) -> Result<RunOutcome, SimError> {
        let mut world = FastWorld::from_env(Arc::clone(&self.env), init)?;
        Ok(world.run(self.t_max))
    }

    /// Runs every configuration in order on the calling thread. For
    /// parallel evaluation, map [`BatchRunner::outcome_for`] over the
    /// configurations with a thread pool — the runner is `Sync`.
    ///
    /// # Errors
    ///
    /// The first placement error encountered, as [`BatchRunner::outcome_for`].
    pub fn run_all(&self, inits: &[InitialConfig]) -> Result<Vec<RunOutcome>, SimError> {
        let _span = a2a_obs::Span::enter("batch.run_all");
        let outcomes: Result<Vec<RunOutcome>, SimError> =
            inits.iter().map(|init| self.outcome_for(init)).collect();
        if let Ok(outcomes) = &outcomes {
            a2a_obs::event!(a2a_obs::Level::Debug, "batch.run_all",
                "configs" => outcomes.len(),
                "successful" => outcomes.iter().filter(|o| o.is_successful()).count(),
                "t_max" => self.t_max);
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::simulate;
    use a2a_fsm::best_agent;
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batch_outcomes_equal_oracle_simulate() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let cfg = WorldConfig::paper(kind, 16);
            let genome = best_agent(kind);
            let runner = BatchRunner::from_genome(&cfg, genome.clone(), 200).unwrap();
            let mut rng = SmallRng::seed_from_u64(77);
            for _ in 0..10 {
                let init =
                    InitialConfig::random(cfg.lattice, kind, 12, &[], &mut rng).unwrap();
                let fast = runner.outcome_for(&init).unwrap();
                let slow = simulate(&cfg, genome.clone(), &init, 200).unwrap();
                assert_eq!(fast, slow, "{kind}");
            }
        }
    }

    #[test]
    fn runner_is_shareable_across_threads() {
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let inits: Vec<InitialConfig> = (0..8)
            .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap())
            .collect();
        let serial = runner.run_all(&inits).unwrap();
        let parallel: Vec<RunOutcome> = std::thread::scope(|scope| {
            inits
                .iter()
                .map(|init| scope.spawn(|| runner.outcome_for(init).unwrap()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn environment_errors_surface_at_construction() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        assert!(matches!(
            BatchRunner::from_genome(&cfg, best_agent(GridKind::Triangulate), 200),
            Err(SimError::SpecMismatch(_))
        ));
    }

    #[test]
    fn pooled_outcomes_equal_fresh_outcomes() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let cfg = WorldConfig::paper(kind, 16);
            let runner = BatchRunner::from_genome(&cfg, best_agent(kind), 200).unwrap();
            let mut rng = SmallRng::seed_from_u64(123);
            for k in [4usize, 16, 9, 16] {
                let init = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng).unwrap();
                assert_eq!(
                    runner.outcome_for(&init).unwrap(),
                    runner.fresh_outcome_for(&init).unwrap(),
                    "{kind} k={k}"
                );
            }
        }
    }

    #[test]
    fn pool_keeps_interleaved_runners_separate() {
        // Two different genomes alternating on one thread: each reuse
        // must pick the world compiled for *its* environment.
        let cfg = WorldConfig::paper(GridKind::Triangulate, 16);
        let a = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let mut wanderer = best_agent(cfg.kind);
        {
            use rand::rngs::SmallRng as R;
            use rand::SeedableRng;
            let mut rng = R::seed_from_u64(5);
            wanderer = a2a_fsm::offspring(&wanderer, a2a_fsm::MutationRates::paper(), &mut rng);
        }
        let b = BatchRunner::from_genome(&cfg, wanderer, 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..6 {
            let init = InitialConfig::random(cfg.lattice, cfg.kind, 12, &[], &mut rng).unwrap();
            assert_eq!(a.outcome_for(&init).unwrap(), a.fresh_outcome_for(&init).unwrap());
            assert_eq!(b.outcome_for(&init).unwrap(), b.fresh_outcome_for(&init).unwrap());
        }
    }

    #[test]
    fn failed_reset_does_not_poison_the_pool() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let good = InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap();
        let _ = runner.outcome_for(&good).unwrap();
        let dup = InitialConfig::new(vec![
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
        ]);
        assert!(runner.outcome_for(&dup).is_err());
        // Subsequent pooled runs still match the fresh path.
        let next = InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap();
        assert_eq!(
            runner.outcome_for(&next).unwrap(),
            runner.fresh_outcome_for(&next).unwrap()
        );
    }

    #[test]
    fn placement_errors_surface_per_configuration() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let runner = BatchRunner::from_genome(&cfg, best_agent(cfg.kind), 200).unwrap();
        let dup = InitialConfig::new(vec![
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
            (a2a_grid::Pos::new(1, 1), a2a_grid::Dir::new(0)),
        ]);
        assert!(matches!(
            runner.outcome_for(&dup),
            Err(SimError::DuplicatePosition(_))
        ));
    }
}

//! Process-level chaos: `kill -9` a real `a2a-serve` process with at
//! least four jobs mid-flight, restart it on the same store, and
//! require every job's sealed result to be **byte-equal** to an
//! uninterrupted control run — the crate's whole durability claim,
//! enforced end to end.

use a2a_obs::json::Json;
use a2a_serve::client;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the child on drop so a failing assertion never leaks servers.
struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(store: &std::path::Path) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_a2a-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--store",
            store.to_str().unwrap(),
            "--executors",
            "6",
            "--tenant-running",
            "6",
            "--threads",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn a2a-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server prints its banner")
        .expect("banner is readable");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    Server { child, addr }
}

/// Six jobs, two tenants, fixed ids and seeds: heavy enough that the
/// kill lands mid-run, light enough to finish promptly after restart.
fn submissions() -> Vec<(String, String)> {
    (0..6)
        .map(|i| {
            let id = format!("chaos-{i}");
            let body = Json::object()
                .with("tenant", if i % 2 == 0 { "even" } else { "odd" })
                .with("id", id.as_str())
                .with("seed", 100 + i as u64)
                .with("m", 8u64)
                .with("k", 4u64)
                .with("configs", 2u64)
                .with("generations", 400u64)
                .with("population", 4u64)
                .with("t_max", 300u64)
                .to_string();
            (id, body)
        })
        .collect()
}

fn submit_all(addr: &str, jobs: &[(String, String)]) {
    for (id, body) in jobs {
        let reply = client::post(addr, "/jobs", body).expect("POST /jobs");
        assert_eq!(reply.status, 202, "submitting {id}: {}", reply.body);
    }
}

fn running_now(addr: &str) -> u64 {
    client::get(addr, "/healthz")
        .ok()
        .and_then(|r| r.json().ok())
        .and_then(|d| d.get("running").and_then(Json::as_f64))
        .unwrap_or(0.0) as u64
}

fn await_results(addr: &str, jobs: &[(String, String)], timeout: Duration) -> Vec<String> {
    let start = Instant::now();
    jobs.iter()
        .map(|(id, _)| loop {
            let reply = client::get(addr, &format!("/jobs/{id}/result")).expect("GET result");
            if reply.status == 200 {
                break reply.body;
            }
            let status = reply
                .json()
                .ok()
                .and_then(|d| d.get("status").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_default();
            assert!(
                !matches!(status.as_str(), "failed" | "timed_out"),
                "job {id} ended `{status}` instead of completing"
            );
            assert!(
                start.elapsed() < timeout,
                "job {id} still `{status}` after {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(30));
        })
        .collect()
}

#[test]
fn kill_nine_mid_flight_then_restart_is_bit_identical() {
    let base = std::env::temp_dir().join(format!("a2a_serve_chaos_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let victim_store = base.join("victim");
    let control_store = base.join("control");
    let jobs = submissions();

    // Interrupted run: submit everything, wait until at least four
    // jobs are executing, then SIGKILL with no warning whatsoever.
    let victim = spawn_server(&victim_store);
    submit_all(&victim.addr, &jobs);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut peak = 0;
    while peak < 4 {
        peak = peak.max(running_now(&victim.addr));
        assert!(
            Instant::now() < deadline,
            "never saw 4 concurrent jobs (peak {peak}) — grow the job size"
        );
        std::thread::sleep(Duration::from_millis(3));
    }
    drop(victim); // Drop::drop is kill(-9): no drain, no flush, nothing.

    // Restart on the same store: recovery re-queues every non-terminal
    // job and each resumes from its last durable checkpoint.
    let revived = spawn_server(&victim_store);
    let interrupted = await_results(&revived.addr, &jobs, Duration::from_secs(240));

    // No duplicates, no strays: the store holds exactly the six jobs.
    let health = client::get(&revived.addr, "/healthz").unwrap().json().unwrap();
    assert_eq!(health.get("queued").and_then(Json::as_f64), Some(0.0));
    drop(revived);

    // Control run: same submissions, never interrupted.
    let control = spawn_server(&control_store);
    submit_all(&control.addr, &jobs);
    let baseline = await_results(&control.addr, &jobs, Duration::from_secs(240));
    drop(control);

    for ((id, _), (got, want)) in jobs.iter().zip(interrupted.iter().zip(baseline.iter())) {
        assert_eq!(
            got, want,
            "job {id}: interrupted-and-resumed result differs from the control run"
        );
        a2a_obs::schema::verify_checksum(&a2a_obs::json::parse(got).unwrap())
            .expect("results stay sealed");
    }

    let _ = std::fs::remove_dir_all(&base);
}

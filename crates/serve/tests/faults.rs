//! Fault-injection tests for the service's three chaos seams. Fault
//! plans are process-global, so this file is its own test binary (the
//! plain service tests run in a different process) and every test here
//! serialises on one guard and disarms before releasing it.

use a2a_obs::fault::{self, FaultPlan};
use a2a_obs::json::Json;
use a2a_serve::{client, QueueConfig, ServeConfig, Server, ServerHandle};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static GUARD: Mutex<()> = Mutex::new(());

fn start(name: &str) -> (ServerHandle, String) {
    let store_root =
        std::env::temp_dir().join(format!("a2a_serve_fault_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let cfg = ServeConfig {
        store_root,
        queue: QueueConfig::default(),
        executors: 1,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("bind loopback");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn quick_job(id: &str) -> String {
    Json::object()
        .with("tenant", "chaos")
        .with("id", id)
        .with("m", 4u64)
        .with("k", 2u64)
        .with("configs", 1u64)
        .with("generations", 3u64)
        .with("population", 2u64)
        .with("t_max", 200u64)
        .with("max_retries", 3u64)
        .to_string()
}

fn poll_status(addr: &str, id: &str, wanted: &[&str]) -> String {
    let start = Instant::now();
    loop {
        let status = client::get(addr, &format!("/jobs/{id}"))
            .ok()
            .and_then(|r| r.json().ok())
            .and_then(|d| d.get("status").and_then(Json::as_str).map(str::to_string))
            .unwrap_or_default();
        if wanted.contains(&status.as_str()) {
            return status;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "job {id} stuck in `{status}` (wanted one of {wanted:?})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn injected_request_fault_answers_500_and_service_recovers() {
    let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let (handle, addr) = start("request");

    fault::arm(FaultPlan::seeded(3).with("serve.request", 1.0, 2));
    let first = client::get(&addr, "/healthz").unwrap();
    assert_eq!(first.status, 500, "{}", first.body);
    assert!(first.body.contains("injected"));
    let second = client::get(&addr, "/healthz").unwrap();
    assert_eq!(second.status, 500);
    fault::disarm();

    // The fault site is request-scoped: the listener, workers, and
    // queue are untouched, so the very next request succeeds.
    let healthy = client::get(&addr, "/healthz").unwrap();
    assert_eq!(healthy.status, 200, "{}", healthy.body);
    handle.stop();
}

#[test]
fn step_panic_is_retried_with_backoff_until_completion() {
    let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let (handle, addr) = start("step");

    // The first generation boundary panics; attempt two resumes from
    // the checkpoint and finishes.
    fault::arm(FaultPlan::seeded(5).with("serve.job.step", 1.0, 1));
    assert_eq!(client::post(&addr, "/jobs", &quick_job("flaky")).unwrap().status, 202);
    assert_eq!(poll_status(&addr, "flaky", &["completed", "failed"]), "completed");
    fault::disarm();

    let manifest = client::get(&addr, "/jobs/flaky").unwrap().json().unwrap();
    let attempts = manifest.get("attempts").and_then(Json::as_f64).unwrap() as u64;
    assert!(attempts >= 2, "a panicking attempt must be visible: attempts = {attempts}");

    let result = client::get(&addr, "/jobs/flaky/result").unwrap();
    assert_eq!(result.status, 200);
    a2a_obs::schema::verify_checksum(&result.json().unwrap()).expect("sealed result");
    handle.stop();
}

#[test]
fn checkpoint_write_fault_is_transient_not_fatal() {
    let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let (handle, addr) = start("checkpoint");

    // serve.checkpoint guards manifest and result saves. A budget of
    // two refusals may eat the submit-time manifest write (a 500 the
    // client retries) and/or an executor-side save (retried with
    // backoff); either way the job must still complete with a valid
    // sealed result.
    fault::arm(FaultPlan::seeded(11).with("serve.checkpoint", 1.0, 2));
    let mut accepted = false;
    for _ in 0..5 {
        let reply = client::post(&addr, "/jobs", &quick_job("durable")).unwrap();
        match reply.status {
            202 => {
                accepted = true;
                break;
            }
            409 => {
                // An earlier refused submit still left the manifest:
                // also fine, the job exists.
                accepted = true;
                break;
            }
            500 => continue,
            other => panic!("unexpected status {other}: {}", reply.body),
        }
    }
    assert!(accepted, "submission never got through");
    assert_eq!(poll_status(&addr, "durable", &["completed", "failed"]), "completed");
    fault::disarm();

    let result = client::get(&addr, "/jobs/durable/result").unwrap();
    assert_eq!(result.status, 200);
    a2a_obs::schema::verify_checksum(&result.json().unwrap()).expect("sealed result");
    handle.stop();
}

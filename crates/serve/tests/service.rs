//! In-process service tests: the full HTTP surface, backpressure,
//! quotas, deadlines, and drain — everything except process-kill chaos
//! (`tests/chaos.rs`) and fault injection (`tests/faults.rs`, which
//! needs its own process because fault plans are process-global).

use a2a_obs::json::Json;
use a2a_serve::{client, QueueConfig, ServeConfig, Server, ServerHandle};
use std::time::{Duration, Instant};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("a2a_serve_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str, queue: QueueConfig, executors: usize) -> (ServerHandle, String) {
    let cfg = ServeConfig {
        store_root: scratch(name),
        queue,
        executors,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg).expect("bind loopback");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// A fast job: tiny world, tight step budget — completes in well under
/// a second.
fn quick_job(tenant: &str, seed: u64) -> String {
    Json::object()
        .with("tenant", tenant)
        .with("seed", seed)
        .with("m", 4u64)
        .with("k", 2u64)
        .with("configs", 1u64)
        .with("generations", 2u64)
        .with("population", 2u64)
        .with("t_max", 200u64)
        .to_string()
}

/// A job that keeps an executor busy until stopped (the generation
/// budget is far beyond what any test waits for).
fn slow_job(tenant: &str, id: &str) -> String {
    Json::object()
        .with("tenant", tenant)
        .with("id", id)
        .with("m", 8u64)
        .with("k", 4u64)
        .with("configs", 2u64)
        .with("generations", 500_000u64)
        .with("population", 4u64)
        .with("t_max", 300u64)
        .to_string()
}

fn poll_status(addr: &str, id: &str, wanted: &[&str], timeout: Duration) -> String {
    let start = Instant::now();
    loop {
        let reply = client::get(addr, &format!("/jobs/{id}")).expect("GET status");
        let status = reply
            .json()
            .ok()
            .and_then(|d| d.get("status").and_then(Json::as_str).map(str::to_string))
            .unwrap_or_default();
        if wanted.contains(&status.as_str()) {
            return status;
        }
        assert!(
            start.elapsed() < timeout,
            "job {id} stuck in `{status}` (wanted one of {wanted:?})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_running(addr: &str, at_least: u64) {
    let start = Instant::now();
    loop {
        let health = client::get(addr, "/healthz").expect("GET healthz").json().unwrap();
        if health.get("running").and_then(Json::as_f64).unwrap_or(0.0) as u64 >= at_least {
            return;
        }
        assert!(start.elapsed() < Duration::from_secs(10), "no job ever started running");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn submit_poll_result_round_trip() {
    let (handle, addr) = start("round_trip", QueueConfig::default(), 2);

    let reply = client::post(&addr, "/jobs", &quick_job("acme", 7)).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.body);
    let id = reply.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();

    // Result is a 404-with-status until the job lands.
    let early = client::get(&addr, &format!("/jobs/{id}/result")).unwrap();
    if early.status == 404 {
        assert!(early.json().unwrap().get("status").is_some());
    }

    assert_eq!(poll_status(&addr, &id, &["completed", "failed"], Duration::from_secs(30)), "completed");
    let result = client::get(&addr, &format!("/jobs/{id}/result")).unwrap();
    assert_eq!(result.status, 200);
    let doc = result.json().unwrap();
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(a2a_serve::RESULT_SCHEMA));
    a2a_obs::schema::verify_checksum(&doc).expect("result is sealed");
    assert!(doc.get("best").and_then(|b| b.get("genome")).is_some());

    // Progress events streamed per generation boundary.
    let events = client::get(&addr, &format!("/jobs/{id}/events")).unwrap();
    assert_eq!(events.status, 200);
    assert!(
        events.body.lines().any(|l| l.contains("serve.job.gen")),
        "events buffer holds generation progress: {}",
        events.body
    );

    // Unknown routes and ids.
    assert_eq!(client::get(&addr, "/jobs/absent").unwrap().status, 404);
    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(client::post(&addr, "/jobs", "{not json").unwrap().status, 400);
    assert_eq!(client::post(&addr, "/jobs", "{}").unwrap().status, 400);

    handle.stop();
}

#[test]
fn islands_job_completes_with_islands_result() {
    let (handle, addr) = start("islands", QueueConfig::default(), 1);
    let body = Json::object()
        .with("tenant", "acme")
        .with("id", "isl-1")
        .with("seed", 5u64)
        .with("m", 4u64)
        .with("k", 2u64)
        .with("configs", 1u64)
        .with("generations", 4u64)
        .with("population", 3u64)
        .with("t_max", 200u64)
        .with("islands", 2u64)
        .with("epoch", 2u64)
        .with("migrants", 1u64)
        .to_string();
    assert_eq!(client::post(&addr, "/jobs", &body).unwrap().status, 202);
    assert_eq!(
        poll_status(&addr, "isl-1", &["completed", "failed"], Duration::from_secs(30)),
        "completed"
    );

    let result = client::get(&addr, "/jobs/isl-1/result").unwrap();
    assert_eq!(result.status, 200);
    let doc = result.json().unwrap();
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(a2a_serve::RESULT_SCHEMA));
    a2a_obs::schema::verify_checksum(&doc).expect("islands result is sealed");
    assert_eq!(doc.get("mode").and_then(Json::as_str), Some("islands"));
    assert_eq!(doc.get("islands").and_then(Json::as_arr).map(|a| a.len()), Some(2));
    assert!(doc.get("best").and_then(|b| b.get("genome")).is_some());

    // Epoch progress reaches the event stream.
    let events = client::get(&addr, "/jobs/isl-1/events").unwrap();
    assert!(
        events.body.lines().any(|l| l.contains("serve.job.epoch")),
        "events buffer holds epoch progress: {}",
        events.body
    );
    handle.stop();
}

#[test]
fn job_listing_paginates_and_prunes() {
    let (handle, addr) = start("pagination", QueueConfig::default(), 2);
    for i in 0..5 {
        let body = Json::object()
            .with("tenant", "acme")
            .with("id", format!("page-{i}"))
            .with("seed", i as u64)
            .with("m", 4u64)
            .with("k", 2u64)
            .with("configs", 1u64)
            .with("generations", 2u64)
            .with("population", 2u64)
            .with("t_max", 200u64)
            .to_string();
        assert_eq!(client::post(&addr, "/jobs", &body).unwrap().status, 202);
    }
    for i in 0..5 {
        poll_status(&addr, &format!("page-{i}"), &["completed"], Duration::from_secs(30));
    }

    // Page 1: first two ids plus a `next` cursor.
    let page = client::get(&addr, "/jobs?limit=2").unwrap();
    assert_eq!(page.status, 200, "{}", page.body);
    let doc = page.json().unwrap();
    let ids = |d: &Json| -> Vec<String> {
        d.get("jobs")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|j| j.get("id").and_then(Json::as_str).unwrap().to_string())
            .collect()
    };
    assert_eq!(ids(&doc), vec!["page-0", "page-1"]);
    assert_eq!(doc.get("next").and_then(Json::as_str), Some("page-1"));
    assert_eq!(
        doc.get("jobs").and_then(Json::as_arr).unwrap()[0]
            .get("status")
            .and_then(Json::as_str),
        Some("completed")
    );

    // Follow the cursor; the final short page carries no `next`.
    let page2 = client::get(&addr, "/jobs?after=page-1&limit=2").unwrap().json().unwrap();
    assert_eq!(ids(&page2), vec!["page-2", "page-3"]);
    let page3 = client::get(&addr, "/jobs?after=page-3&limit=2").unwrap().json().unwrap();
    assert_eq!(ids(&page3), vec!["page-4"]);
    assert!(page3.get("next").is_none(), "short page ends the walk");

    // Bad limits are named, not clamped silently.
    assert_eq!(client::get(&addr, "/jobs?limit=0").unwrap().status, 400);
    assert_eq!(client::get(&addr, "/jobs?limit=nope").unwrap().status, 400);

    // Retention: keep the 2 newest terminal jobs, expire the rest.
    let pruned = client::post(&addr, "/admin/prune?keep=2", "").unwrap();
    assert_eq!(pruned.status, 200, "{}", pruned.body);
    let pruned_ids: Vec<String> = pruned
        .json()
        .unwrap()
        .get("pruned")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|j| j.as_str().unwrap().to_string())
        .collect();
    assert_eq!(pruned_ids, vec!["page-0", "page-1", "page-2"]);
    let after = client::get(&addr, "/jobs").unwrap().json().unwrap();
    assert_eq!(ids(&after), vec!["page-3", "page-4"]);
    assert_eq!(client::get(&addr, "/jobs/page-0").unwrap().status, 404);

    handle.stop();
}

#[test]
fn identical_submissions_conflict() {
    let (handle, addr) = start("conflict", QueueConfig::default(), 1);
    let body = Json::object()
        .with("tenant", "t")
        .with("id", "fixed-id")
        .with("generations", 2u64)
        .with("configs", 1u64)
        .with("m", 4u64)
        .with("k", 2u64)
        .with("population", 2u64)
        .with("t_max", 200u64)
        .to_string();
    assert_eq!(client::post(&addr, "/jobs", &body).unwrap().status, 202);
    assert_eq!(client::post(&addr, "/jobs", &body).unwrap().status, 409);
    handle.stop();
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // One executor, one tenant running slot, queue of 2: a slow job
    // occupies the executor, two fit in the queue, the next sheds.
    let queue = QueueConfig { capacity: 2, tenant_max_queued: 16, tenant_max_running: 1 };
    let (handle, addr) = start("backpressure", queue, 1);

    assert_eq!(client::post(&addr, "/jobs", &slow_job("t1", "hog")).unwrap().status, 202);
    wait_running(&addr, 1);
    assert_eq!(client::post(&addr, "/jobs", &slow_job("t1", "q1")).unwrap().status, 202);
    assert_eq!(client::post(&addr, "/jobs", &slow_job("t1", "q2")).unwrap().status, 202);

    let shed = client::post(&addr, "/jobs", &slow_job("t1", "q3")).unwrap();
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert!(shed.body.contains("queue_full"));
    let retry_after = shed.header("retry-after").expect("429 carries Retry-After");
    assert!(retry_after.parse::<u64>().unwrap() >= 1);

    // The shed job left no durable trace.
    let listed = client::get(&addr, "/jobs/q3").unwrap();
    assert_eq!(listed.status, 404);

    handle.stop();
}

#[test]
fn tenant_quota_answers_429_and_other_tenants_proceed() {
    let queue = QueueConfig { capacity: 100, tenant_max_queued: 1, tenant_max_running: 1 };
    let (handle, addr) = start("quota", queue, 2);

    assert_eq!(client::post(&addr, "/jobs", &slow_job("greedy", "g-run")).unwrap().status, 202);
    wait_running(&addr, 1);
    assert_eq!(client::post(&addr, "/jobs", &slow_job("greedy", "g-q")).unwrap().status, 202);

    let capped = client::post(&addr, "/jobs", &slow_job("greedy", "g-over")).unwrap();
    assert_eq!(capped.status, 429, "{}", capped.body);
    assert!(capped.body.contains("tenant_quota"));
    assert!(capped.header("retry-after").is_some());

    // A different tenant is unaffected by greedy's quota.
    let other = client::post(&addr, "/jobs", &quick_job("modest", 3)).unwrap();
    assert_eq!(other.status, 202, "{}", other.body);
    let id = other.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(poll_status(&addr, &id, &["completed"], Duration::from_secs(30)), "completed");

    handle.stop();
}

#[test]
fn deadline_marks_job_timed_out() {
    let (handle, addr) = start("deadline", QueueConfig::default(), 1);
    let body = Json::object()
        .with("tenant", "t")
        .with("id", "late")
        .with("m", 8u64)
        .with("k", 4u64)
        .with("configs", 2u64)
        .with("generations", 500_000u64)
        .with("population", 4u64)
        .with("t_max", 300u64)
        .with("deadline_ms", 50u64)
        .to_string();
    assert_eq!(client::post(&addr, "/jobs", &body).unwrap().status, 202);
    assert_eq!(
        poll_status(&addr, "late", &["timed_out", "completed", "failed"], Duration::from_secs(30)),
        "timed_out"
    );
    let manifest = client::get(&addr, "/jobs/late").unwrap().json().unwrap();
    assert_eq!(manifest.get("error").and_then(Json::as_str), Some("deadline exceeded"));
    handle.stop();
}

#[test]
fn drain_stops_admission_and_requeues_running_jobs() {
    let (handle, addr) = start("drain", QueueConfig::default(), 1);
    assert_eq!(client::post(&addr, "/jobs", &slow_job("t", "survivor")).unwrap().status, 202);
    wait_running(&addr, 1);

    assert_eq!(client::post(&addr, "/admin/drain", "").map(|r| r.status).unwrap_or(0), 200);
    let refused = client::post(&addr, "/jobs", &quick_job("t", 1)).unwrap();
    assert_eq!(refused.status, 503);
    assert!(refused.header("retry-after").is_some());
    let health = client::get(&addr, "/healthz").unwrap().json().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("draining"));

    // The running job lands back in `queued`, durably, never lost.
    assert_eq!(
        poll_status(&addr, "survivor", &["queued"], Duration::from_secs(30)),
        "queued"
    );
    handle.stop();
}

#[test]
fn metrics_snapshot_serves_counters() {
    a2a_obs::set_metrics(true);
    let (handle, addr) = start("metrics", QueueConfig::default(), 1);
    let reply = client::post(&addr, "/jobs", &quick_job("t", 11)).unwrap();
    assert_eq!(reply.status, 202);
    let id = reply.json().unwrap().get("id").and_then(Json::as_str).unwrap().to_string();
    poll_status(&addr, &id, &["completed"], Duration::from_secs(30));
    let metrics = client::get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("serve.jobs.submitted"),
        "snapshot names the serve counters: {}",
        metrics.body
    );
    handle.stop();
}

#[test]
fn post_with_oversized_body_answers_413() {
    use std::io::{Read, Write};
    let (handle, addr) = start("oversize", QueueConfig::default(), 1);
    // Headers only: the server must reject on the declared length
    // without ever trying to buffer the (absent) 2 MiB body.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .write_all(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 2097152\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    assert!(reply.starts_with("HTTP/1.1 413"), "got: {reply}");
    handle.stop();
}

//! The service itself: TCP accept loop, connection workers, executor
//! threads, startup recovery, and the HTTP route table.
//!
//! # Threads
//!
//! * one accept thread feeding a small pool of connection workers
//!   (each connection is one request, `Connection: close`),
//! * `executors` job-executor threads popping the [`crate::JobQueue`],
//! * one shared [`WorkerPool`] for fitness evaluation across every job
//!   (the PR-4 watchdog/quarantine path, so a hung or panicking
//!   evaluation degrades the pool instead of the service).
//!
//! # Durability protocol
//!
//! A job is durable from the moment its manifest lands (before the
//! queue admits it — a crash in between re-admits it at startup).
//! Executors checkpoint through the job's own
//! [`a2a_run::CheckpointStore`]; a completed job writes its sealed
//! result **before** flipping the manifest to `completed`, so a valid
//! `result.json` is the source of truth at recovery. `SIGKILL` at any
//! point is safe; restart resumes every non-terminal job from its last
//! checkpoint, bit-identically.

use crate::http::{read_request, Request, RequestError, Response};
use crate::job::{build_islands_result, build_result, JobSpec};
use crate::queue::{JobQueue, QueueConfig, QueuedJob, SubmitError};
use a2a_fsm::FsmSpec;
use a2a_ga::{Evaluator, GaConfig, IslandConfig, WorkerPool};
use a2a_obs::json::{self, Json};
use a2a_obs::{fault, Event, Level};
use a2a_run::{
    context_digest, run_evolution, run_islands_checkpointed, IslandsReport, JobManifest,
    JobStatus, JobStore, RunOptions, RunReport, StopSignal,
};
use a2a_sim::{paper_config_set, WorldConfig};
use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-job event-buffer cap (oldest lines drop first).
const EVENT_BUFFER_LINES: usize = 512;

/// Cap on one retry backoff sleep.
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// Service configuration. [`ServeConfig::default`] binds an ephemeral
/// loopback port — fine for tests; real deployments set `addr`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port `0` picks one).
    pub addr: String,
    /// Durable job-store root directory.
    pub store_root: PathBuf,
    /// Queue capacity and tenant quotas.
    pub queue: QueueConfig,
    /// Job-executor threads (jobs running concurrently).
    pub executors: usize,
    /// Threads in the shared fitness [`WorkerPool`].
    pub worker_threads: usize,
    /// Connection-handler threads.
    pub conn_workers: usize,
    /// Default retry budget for panicking attempts (a job's
    /// `max_retries` overrides it).
    pub max_retries: u32,
    /// First retry backoff in milliseconds (doubles per attempt,
    /// capped at 2 s).
    pub retry_base_ms: u64,
    /// Checkpoint cadence in generations.
    pub cadence: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            store_root: PathBuf::from("serve-store"),
            queue: QueueConfig::default(),
            executors: 4,
            worker_threads: 1,
            conn_workers: 8,
            max_retries: 2,
            retry_base_ms: 10,
            cadence: 1,
        }
    }
}

/// Everything the server's threads share.
#[derive(Debug)]
struct ServerState {
    cfg: ServeConfig,
    store: JobStore,
    queue: JobQueue,
    pool: Arc<WorkerPool>,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// In-memory progress event lines per job (`GET /jobs/<id>/events`).
    events: Mutex<HashMap<String, VecDeque<String>>>,
    /// Stop signals of currently executing jobs, raised on drain/stop.
    stops: Mutex<HashMap<String, StopSignal>>,
    started: Instant,
}

impl ServerState {
    fn push_event(&self, id: &str, line: String) {
        let mut events = self.events.lock().unwrap();
        let buf = events.entry(id.to_string()).or_default();
        if buf.len() >= EVENT_BUFFER_LINES {
            buf.pop_front();
        }
        buf.push_back(line);
    }

    fn counter(&self, name: &'static str) {
        if a2a_obs::metrics_enabled() {
            a2a_obs::global().counter(name).incr();
        }
    }

    fn gauge_depth(&self) {
        if a2a_obs::metrics_enabled() {
            a2a_obs::global().gauge("serve.queue.depth").set(self.queue.depth() as i64);
        }
    }

    /// Raises admission refusal and stops running jobs at their next
    /// checkpointed generation boundary (they re-queue durably).
    fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
        for stop in self.stops.lock().unwrap().values() {
            stop.stop();
        }
    }
}

/// The service. [`Server::start`] returns a [`ServerHandle`]; the
/// server runs until [`ServerHandle::stop`] (or process death, which is
/// always safe — see the crate docs).
#[derive(Debug)]
pub struct Server;

/// A running server: its bound address plus join/stop control.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers durable jobs, and spawns every thread.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    ///
    /// # Panics
    ///
    /// If the store root exists but holds a corrupt manifest layout so
    /// broken that recovery cannot even enumerate it (never for merely
    /// torn files — those are per-job errors, logged and skipped).
    pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            store: JobStore::new(&cfg.store_root),
            queue: JobQueue::new(cfg.queue),
            pool: Arc::new(WorkerPool::new(cfg.worker_threads)),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            events: Mutex::new(HashMap::new()),
            stops: Mutex::new(HashMap::new()),
            started: Instant::now(),
            cfg,
        });
        recover(&state);

        let mut threads = Vec::new();
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        for w in 0..state.cfg.conn_workers.max(1) {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&conn_rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("a2a-serve-conn-{w}"))
                    .spawn(move || connection_worker(&state, &rx))
                    .expect("spawn connection worker"),
            );
        }
        {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name("a2a-serve-accept".to_string())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if state.shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            match stream {
                                Ok(s) => {
                                    if conn_tx.send(s).is_err() {
                                        break;
                                    }
                                }
                                Err(_) => continue,
                            }
                        }
                        drop(conn_tx); // hangs up the connection workers
                    })
                    .expect("spawn accept thread"),
            );
        }
        for e in 0..state.cfg.executors.max(1) {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("a2a-serve-exec-{e}"))
                    .spawn(move || {
                        while let Some(job) = state.queue.pop() {
                            state.gauge_depth();
                            execute(&state, &job);
                            state.queue.done(&job.tenant);
                        }
                    })
                    .expect("spawn executor"),
            );
        }
        a2a_obs::event!(Level::Info, "serve.start",
            "addr" => addr.to_string(), "recovered" => state.queue.depth() as u64);
        Ok(ServerHandle { addr, state, threads })
    }
}

impl ServerHandle {
    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Graceful drain: stop admitting, stop running jobs at their next
    /// boundary (re-queued durably). The handle stays joinable.
    pub fn drain(&self) {
        self.state.drain();
    }

    /// Drains, wakes the accept loop, and joins every thread.
    pub fn stop(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.drain();
        // Unblock `listener.incoming()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Startup recovery: every durable job that is not yet terminal goes
/// back into the queue; a job whose sealed result survived gets its
/// manifest flipped to `completed` (the result file is authoritative —
/// the crash may have hit between the two writes).
fn recover(state: &Arc<ServerState>) {
    for id in state.store.list() {
        let manifest = match state.store.load_manifest(&id) {
            Ok(Some(m)) => m,
            Ok(None) => continue,
            Err(e) => {
                a2a_obs::event!(Level::Warn, "serve.recover.skip",
                    "job" => id.as_str(), "error" => e);
                continue;
            }
        };
        if state.store.load_result(&id).is_ok_and(|r| r.is_some()) {
            if manifest.status != JobStatus::Completed {
                let mut m = manifest;
                m.status = JobStatus::Completed;
                let _ = state.store.save_manifest(&m);
            }
            continue;
        }
        if manifest.status.is_terminal() {
            continue;
        }
        let mut m = manifest;
        m.status = JobStatus::Queued;
        if let Err(e) = state.store.save_manifest(&m) {
            a2a_obs::event!(Level::Warn, "serve.recover.skip",
                "job" => id.as_str(), "error" => e.to_string());
            continue;
        }
        state.queue.recover(&m.id, &m.tenant, m.priority, m.seq);
        a2a_obs::event!(Level::Info, "serve.recover",
            "job" => m.id.as_str(), "tenant" => m.tenant.as_str());
    }
}

fn connection_worker(state: &Arc<ServerState>, rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        let stream = match rx.lock().unwrap().recv() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut stream = stream;
        let response = match read_request(&stream) {
            Ok(req) => dispatch(state, &req),
            Err(RequestError::TooLarge) => Response::error(413, "body too large"),
            Err(RequestError::Malformed(m)) => Response::error(400, &m),
            Err(RequestError::Io(_)) => continue, // peer vanished
        };
        let _ = response.write_to(&mut stream);
    }
}

/// The route table. Every request first crosses the `serve.request`
/// fault site: an injected refusal answers `500` and the server keeps
/// serving — request handling is stateless by construction.
fn dispatch(state: &Arc<ServerState>, req: &Request) -> Response {
    if fault::io_error("serve.request").is_err() {
        state.counter("serve.requests.faulted");
        return Response::error(500, "injected request fault");
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit(state, &req.body),
        ("GET", ["jobs"]) => jobs_index(state, req),
        ("GET", ["jobs", id]) => job_status(state, id),
        ("GET", ["jobs", id, "result"]) => job_result(state, id),
        ("GET", ["jobs", id, "events"]) => job_events(state, id),
        ("GET", ["healthz"]) => healthz(state),
        ("GET", ["metrics"]) => Response::json(200, &a2a_obs::global().snapshot().to_json()),
        ("POST", ["admin", "drain"]) => {
            state.drain();
            Response::json(200, &Json::object().with("draining", true))
        }
        ("POST", ["admin", "prune"]) => prune(state, req),
        ("GET" | "POST", _) => Response::error(404, "no such route"),
        _ => Response::error(405, "method not allowed"),
    }
}

fn submit(state: &Arc<ServerState>, body: &[u8]) -> Response {
    if state.draining.load(Ordering::SeqCst) {
        return Response::error(503, "draining").with_retry_after(10);
    }
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let doc = match json::parse(text) {
        Ok(d) => d,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let spec = match JobSpec::from_json(&doc) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &e),
    };
    let seq = state.queue.next_seq();
    let id = spec.id.clone().unwrap_or_else(|| format!("j{seq}"));
    match state.store.load_manifest(&id) {
        Ok(None) => {}
        Ok(Some(_)) => return Response::error(409, "job id already exists"),
        Err(e) => return Response::error(500, &e),
    }
    // Durable-first: the manifest lands before the queue admits. A
    // crash in between leaves an orphan that recovery re-admits; a
    // refusal below removes it again.
    let manifest = JobManifest {
        id: id.clone(),
        tenant: spec.tenant.clone(),
        priority: spec.priority,
        seq,
        status: JobStatus::Queued,
        attempts: 0,
        spec: doc,
        error: None,
    };
    if let Err(e) = state.store.save_manifest(&manifest) {
        return Response::error(500, &format!("cannot persist job: {e}"));
    }
    match state.queue.submit(&id, &spec.tenant, spec.priority, seq) {
        Ok(()) => {
            state.counter("serve.jobs.submitted");
            state.gauge_depth();
            Response::json(
                202,
                &Json::object().with("id", id.as_str()).with("status", "queued"),
            )
        }
        Err(refusal) => {
            if let Ok(dir) = state.store.job_dir(&id) {
                let _ = std::fs::remove_dir_all(dir);
            }
            state.counter("serve.jobs.rejected");
            match refusal {
                SubmitError::Full => {
                    Response::error(429, "queue_full").with_retry_after(2)
                }
                SubmitError::TenantQuota => {
                    Response::error(429, "tenant_quota").with_retry_after(5)
                }
                SubmitError::Closed => Response::error(503, "draining").with_retry_after(10),
            }
        }
    }
}

/// Largest accepted `limit` on `GET /jobs` (a page is one response).
const MAX_PAGE: usize = 200;

/// `GET /jobs?after=<id>&limit=<n>`: one page of the durable job
/// listing, oldest-id first, with a `next` cursor while more pages
/// remain. Jobs whose manifest is torn still appear (status
/// `"unreadable"`) — pagination must not hide corruption.
fn jobs_index(state: &Arc<ServerState>, req: &Request) -> Response {
    let after = req.query_param("after");
    let limit = match req.query_param("limit") {
        None => 50,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if (1..=MAX_PAGE).contains(&n) => n,
            _ => return Response::error(400, &format!("`limit` must be 1..={MAX_PAGE}")),
        },
    };
    let page = state.store.list_page(after, limit);
    let next = (page.len() == limit).then(|| page.last().cloned()).flatten();
    let jobs: Vec<Json> = page
        .iter()
        .map(|id| {
            let mut entry = Json::object().with("id", id.as_str());
            match state.store.load_manifest(id) {
                Ok(Some(m)) => entry = entry
                    .with("status", m.status.as_str())
                    .with("tenant", m.tenant.as_str())
                    .with("seq", m.seq),
                Ok(None) | Err(_) => entry = entry.with("status", "unreadable"),
            }
            entry
        })
        .collect();
    let mut doc = Json::object().with("jobs", Json::Arr(jobs)).with("count", page.len() as u64);
    if let Some(cursor) = next {
        doc.set("next", cursor.as_str());
    }
    Response::json(200, &doc)
}

/// `POST /admin/prune?keep=<n>`: retention sweep — expires terminal
/// jobs beyond the `keep` most recently admitted (default 64). Running
/// and queued jobs are never touched ([`JobStore::prune_terminal`]).
fn prune(state: &Arc<ServerState>, req: &Request) -> Response {
    let keep = match req.query_param("keep") {
        None => 64,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Response::error(400, "`keep` must be a non-negative integer"),
        },
    };
    match state.store.prune_terminal(keep) {
        Ok(pruned) => {
            state.counter("serve.jobs.pruned");
            let ids: Vec<Json> = pruned.iter().map(|id| Json::Str(id.clone())).collect();
            Response::json(
                200,
                &Json::object()
                    .with("pruned", Json::Arr(ids))
                    .with("kept", keep as u64),
            )
        }
        Err(e) => Response::error(500, &e),
    }
}

fn job_status(state: &Arc<ServerState>, id: &str) -> Response {
    match state.store.load_manifest(id) {
        Ok(Some(m)) => Response::json(200, &m.to_json()),
        Ok(None) => Response::error(404, "no such job"),
        Err(e) => Response::error(500, &e),
    }
}

fn job_result(state: &Arc<ServerState>, id: &str) -> Response {
    match state.store.load_result(id) {
        Ok(Some(doc)) => Response::json(200, &doc),
        Ok(None) => {
            let status = state
                .store
                .load_manifest(id)
                .ok()
                .flatten()
                .map_or("unknown", |m| m.status.as_str());
            Response::json(
                404,
                &Json::object().with("error", "result not ready").with("status", status),
            )
        }
        Err(e) => Response::error(500, &e),
    }
}

fn job_events(state: &Arc<ServerState>, id: &str) -> Response {
    let events = state.events.lock().unwrap();
    let body: String = events
        .get(id)
        .map(|buf| buf.iter().map(|l| format!("{l}\n")).collect())
        .unwrap_or_default();
    Response::text(200, body, "application/x-ndjson")
}

fn healthz(state: &Arc<ServerState>) -> Response {
    let draining = state.draining.load(Ordering::SeqCst);
    Response::json(
        200,
        &Json::object()
            .with("status", if draining { "draining" } else { "ok" })
            .with("queued", state.queue.depth() as u64)
            .with("running", state.queue.running() as u64)
            .with("uptime_ms", state.started.elapsed().as_millis() as u64),
    )
}

/// What one execution attempt produced.
enum Attempt {
    /// Ran to its generation budget; result is sealed and saved.
    Completed(Box<RunReport>, String),
    /// Island-model run that reached its epoch budget.
    CompletedIslands(Box<IslandsReport>, String),
    /// Stopped at a checkpointed boundary (deadline, drain, or a
    /// simulated kill).
    Stopped {
        timed_out: bool,
    },
}

/// Runs one job to a terminal state (or back to `queued` under drain),
/// retrying panicking attempts with exponential backoff.
fn execute(state: &Arc<ServerState>, job: &QueuedJob) {
    let exec_start = Instant::now();
    let mut manifest = match state.store.load_manifest(&job.id) {
        Ok(Some(m)) => m,
        Ok(None) | Err(_) => {
            a2a_obs::event!(Level::Warn, "serve.exec.orphan", "job" => job.id.as_str());
            return;
        }
    };
    if manifest.status.is_terminal() {
        return;
    }
    let spec = match JobSpec::from_json(&manifest.spec) {
        Ok(s) => s,
        Err(e) => {
            finish(state, &mut manifest, JobStatus::Failed, Some(e));
            return;
        }
    };
    let max_retries = spec.max_retries.unwrap_or(state.cfg.max_retries);

    loop {
        manifest.attempts += 1;
        manifest.status = JobStatus::Running;
        let _ = state.store.save_manifest(&manifest);

        let stop = StopSignal::new();
        state.stops.lock().unwrap().insert(job.id.clone(), stop.clone());
        // Jobs stopped by an earlier drain re-enter here after restart;
        // a drain raised between pop() and this point must still stick.
        if state.draining.load(Ordering::SeqCst) {
            stop.stop();
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_attempt(state, &job.id, &spec, exec_start, &stop)
        }));
        state.stops.lock().unwrap().remove(&job.id);

        match outcome {
            Ok(Ok(attempt @ (Attempt::Completed(..) | Attempt::CompletedIslands(..)))) => {
                let result = match &attempt {
                    Attempt::Completed(report, digest) => build_result(&job.id, digest, report),
                    Attempt::CompletedIslands(report, digest) => {
                        build_islands_result(&job.id, digest, report)
                    }
                    Attempt::Stopped { .. } => unreachable!("matched completed variants"),
                };
                match state.store.save_result(&job.id, &result) {
                    Ok(()) => {
                        finish(state, &mut manifest, JobStatus::Completed, None);
                        state.counter("serve.jobs.completed");
                        if a2a_obs::metrics_enabled() {
                            a2a_obs::global()
                                .histogram("serve.job.us")
                                .record_duration_us(exec_start.elapsed());
                        }
                        state.push_event(
                            &job.id,
                            Event::new(Level::Info, "serve.job.done")
                                .field("attempts", u64::from(manifest.attempts))
                                .to_json()
                                .to_string(),
                        );
                        return;
                    }
                    Err(e) => {
                        // A torn result save is transient (it crosses
                        // the serve.checkpoint fault site): retry the
                        // attempt — resume makes the rerun cheap.
                        if !retry_or_fail(state, &mut manifest, max_retries, &e.to_string()) {
                            return;
                        }
                    }
                }
            }
            Ok(Ok(Attempt::Stopped { timed_out: true })) => {
                finish(
                    state,
                    &mut manifest,
                    JobStatus::TimedOut,
                    Some("deadline exceeded".to_string()),
                );
                state.counter("serve.jobs.timed_out");
                return;
            }
            Ok(Ok(Attempt::Stopped { timed_out: false })) => {
                // Drain/shutdown preemption: back to durable `queued`;
                // the next start recovers it from its checkpoint.
                finish(state, &mut manifest, JobStatus::Queued, None);
                return;
            }
            Ok(Err(e)) => {
                // A hard harness refusal (corrupt checkpoint, digest
                // mismatch, impossible spec) will not improve on retry.
                finish(state, &mut manifest, JobStatus::Failed, Some(e));
                state.counter("serve.jobs.failed");
                return;
            }
            Err(panic) => {
                let cause = panic
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic".to_string());
                if !retry_or_fail(state, &mut manifest, max_retries, &cause) {
                    return;
                }
            }
        }
    }
}

/// Records a failed attempt; `true` means "retry again" (after the
/// backoff sleep), `false` means the job was terminally failed.
fn retry_or_fail(
    state: &Arc<ServerState>,
    manifest: &mut JobManifest,
    max_retries: u32,
    cause: &str,
) -> bool {
    a2a_obs::event!(Level::Warn, "serve.exec.attempt_failed",
        "job" => manifest.id.as_str(), "attempt" => u64::from(manifest.attempts),
        "cause" => cause);
    if manifest.attempts > max_retries {
        finish(state, manifest, JobStatus::Failed, Some(cause.to_string()));
        state.counter("serve.jobs.failed");
        return false;
    }
    state.counter("serve.jobs.retries");
    let backoff = Duration::from_millis(
        state.cfg.retry_base_ms.saturating_mul(1 << (manifest.attempts - 1).min(16)),
    )
    .min(MAX_BACKOFF);
    std::thread::sleep(backoff);
    true
}

/// Persists a terminal (or re-queued) manifest state.
fn finish(
    state: &Arc<ServerState>,
    manifest: &mut JobManifest,
    status: JobStatus,
    error: Option<String>,
) {
    manifest.status = status;
    manifest.error = error;
    if let Err(e) = state.store.save_manifest(manifest) {
        // The fault site can refuse this write too; the job stays
        // `running` on disk and recovery re-queues it — never lost.
        a2a_obs::event!(Level::Warn, "serve.exec.manifest_write_failed",
            "job" => manifest.id.as_str(), "error" => e.to_string());
    }
}

/// One attempt: build the world from the spec and run the checkpointed
/// harness, stopping at generation boundaries on deadline or drain.
fn run_attempt(
    state: &Arc<ServerState>,
    id: &str,
    spec: &JobSpec,
    exec_start: Instant,
    stop: &StopSignal,
) -> Result<Attempt, String> {
    let world = WorldConfig::paper(spec.grid, spec.m);
    let configs = paper_config_set(world.lattice, spec.grid, spec.k, spec.configs, spec.seed)
        .map_err(|e| format!("config set: {e:?}"))?;
    let mut ga = GaConfig::paper(spec.generations, spec.seed);
    ga.population = spec.population;
    ga.exchange_b = ga.exchange_b.clamp(1, spec.population / 2);
    let mut evaluator =
        Evaluator::new(world.clone(), configs).with_pool(Arc::clone(&state.pool));
    if spec.t_max > 0 {
        evaluator = evaluator.with_t_max(spec.t_max);
    }
    let digest = context_digest(&ga, &world, evaluator.t_max(), evaluator.configs());
    let opts = RunOptions {
        store: Some(state.store.checkpoints(id)?),
        cadence: state.cfg.cadence.max(1),
        resume: true,
        stop: Some(stop.clone()),
    };
    let timed_out = AtomicBool::new(false);
    if spec.islands > 0 {
        // Island-model jobs checkpoint at epoch boundaries; deadline
        // and drain are honoured at the same cadence.
        let island_config = IslandConfig {
            islands: spec.islands,
            epoch: spec.epoch,
            migrants: spec.migrants,
        };
        let report = run_islands_checkpointed(
            FsmSpec::paper(spec.grid),
            &evaluator,
            ga,
            island_config,
            &opts,
            |epoch, outcomes| {
                fault::panic_point("serve.job.step");
                if let Some(deadline_ms) = spec.deadline_ms {
                    if exec_start.elapsed() >= Duration::from_millis(deadline_ms) {
                        timed_out.store(true, Ordering::SeqCst);
                        stop.stop();
                    }
                }
                if state.draining.load(Ordering::SeqCst) {
                    stop.stop();
                }
                let best = outcomes
                    .iter()
                    .map(|o| o.best().report.fitness)
                    .fold(f64::INFINITY, f64::min);
                state.push_event(
                    id,
                    Event::new(Level::Info, "serve.job.epoch")
                        .field("epoch", epoch as u64)
                        .field("islands", outcomes.len() as u64)
                        .field("best_fitness", best)
                        .to_json()
                        .to_string(),
                );
            },
        )?;
        return if report.stopped || report.killed {
            Ok(Attempt::Stopped { timed_out: timed_out.load(Ordering::SeqCst) })
        } else {
            Ok(Attempt::CompletedIslands(Box::new(report), digest))
        };
    }
    let report = run_evolution(
        FsmSpec::paper(spec.grid),
        &evaluator,
        ga,
        Vec::new(),
        &opts,
        |s| {
            fault::panic_point("serve.job.step");
            if let Some(deadline_ms) = spec.deadline_ms {
                if exec_start.elapsed() >= Duration::from_millis(deadline_ms) {
                    timed_out.store(true, Ordering::SeqCst);
                    stop.stop();
                }
            }
            if state.draining.load(Ordering::SeqCst) {
                stop.stop();
            }
            state.push_event(
                id,
                Event::new(Level::Info, "serve.job.gen")
                    .field("generation", s.generation as u64)
                    .field("best_fitness", s.best_fitness)
                    .field("best_complete", s.best_complete)
                    .to_json()
                    .to_string(),
            );
        },
    )?;
    if report.stopped || report.killed {
        Ok(Attempt::Stopped { timed_out: timed_out.load(Ordering::SeqCst) })
    } else {
        Ok(Attempt::Completed(Box::new(report), digest))
    }
}

//! A deliberately minimal HTTP/1.1 layer: enough to read one request
//! and write one `Connection: close` response per TCP connection —
//! matching the workspace's dependency-free style. No keep-alive, no
//! chunked encoding, no TLS; the service speaks plain JSON bodies.

use a2a_obs::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body; bigger submissions answer `413`.
pub const MAX_BODY: usize = 1 << 20;

/// Per-connection socket timeout: a stalled peer cannot pin a
/// connection worker forever.
pub const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string stripped).
    pub path: String,
    /// Raw query string (without the `?`; empty when none was sent).
    pub query: String,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of one `key=value` query parameter (first match; no
    /// percent-decoding — the service's parameters are plain tokens).
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Transport failure (peer vanished, timeout).
    Io(std::io::Error),
    /// Syntactically broken request — answer `400`.
    Malformed(String),
    /// Body over [`MAX_BODY`] — answer `413`.
    TooLarge,
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads one request from `stream` (which gets [`SOCKET_TIMEOUT`]
/// applied to both directions).
///
/// # Errors
///
/// See [`RequestError`].
pub fn read_request(stream: &TcpStream) -> Result<Request, RequestError> {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line has no target".to_string()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    if !path.starts_with('/') {
        return Err(RequestError::Malformed(format!("target `{target}` is not a path")));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(RequestError::Malformed("connection closed mid-headers".to_string()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad Content-Length".to_string()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, query, body })
}

/// One response, always `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body text.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// `Retry-After` seconds (the backpressure contract on `429`/`503`).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response (document rendered with a trailing newline).
    #[must_use]
    pub fn json(status: u16, doc: &Json) -> Self {
        Self {
            status,
            body: format!("{doc}\n"),
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A raw-body response (JSONL streams, pre-rendered documents).
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>, content_type: &'static str) -> Self {
        Self { status, body: body.into(), content_type, retry_after: None }
    }

    /// A JSON error envelope: `{"error": reason}`.
    #[must_use]
    pub fn error(status: u16, reason: &str) -> Self {
        Self::json(status, &Json::object().with("error", reason))
    }

    /// Builder-style `Retry-After` header.
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Serialises and writes the response.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        );
        if let Some(seconds) = self.retry_after {
            head.push_str(&format!("Retry-After: {seconds}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Reason phrase for the handful of statuses the service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            s // keep alive until the server read everything
        });
        let (server_side, _) = listener.accept().unwrap();
        let req = read_request(&server_side);
        drop(client.join().unwrap());
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = round_trip(
            b"POST /jobs?x=1 HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs", "query string is stripped");
        assert_eq!(req.query, "x=1", "query string is preserved separately");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn query_params_parse() {
        let req = round_trip(b"GET /jobs?after=j3&limit=10 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("after"), Some("j3"));
        assert_eq!(req.query_param("limit"), Some("10"));
        assert_eq!(req.query_param("missing"), None);
        let bare = round_trip(b"GET /jobs HTTP/1.1\r\n\r\n").unwrap();
        assert!(bare.query.is_empty());
        assert_eq!(bare.query_param("after"), None);
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(round_trip(huge.as_bytes()), Err(RequestError::TooLarge)));
        assert!(matches!(round_trip(b"\r\n\r\n"), Err(RequestError::Malformed(_))));
        assert!(matches!(
            round_trip(b"GET http-no-slash HTTP/1.1\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn response_carries_retry_after() {
        let r = Response::error(429, "queue_full").with_retry_after(2);
        assert_eq!(r.status, 429);
        assert_eq!(r.retry_after, Some(2));
        assert!(r.body.contains("queue_full"));
        assert_eq!(reason(429), "Too Many Requests");
    }
}

//! `a2a-serve`: a crash-only, multi-tenant experiment service
//! (DESIGN.md §14) over a dependency-free, hand-rolled HTTP/1.1 layer
//! (std TCP + threads, matching the workspace's vendored style).
//!
//! The supervision layer is the headline:
//!
//! * **Bounded priority queue with backpressure** — [`queue::JobQueue`]
//!   admits at most its capacity; a full queue (or a tenant over its
//!   queued quota) answers `429` with `Retry-After` instead of queueing
//!   unboundedly.
//! * **Per-tenant quotas and fair scheduling** — each tenant is capped
//!   both in queued jobs and in concurrently running jobs; the
//!   dispatcher picks the highest-priority eligible job, FIFO within a
//!   priority, skipping tenants at their running cap.
//! * **Deadlines and retries** — every job may carry a deadline (checked at
//!   generation boundaries; an expired job stops checkpointed and is
//!   marked `timed_out`) and panicking attempts are retried with
//!   exponential backoff through the PR-4 watchdog/quarantine pool
//!   path before the job is marked `failed`.
//! * **Durable, bit-identical resume** — every job's state lives in its
//!   own [`a2a_run::JobStore`] subdirectory (sealed manifest, rolling
//!   checkpoint, sealed result). `kill -9` the server at any moment,
//!   restart it on the same store, and every job completes with a
//!   result **byte-equal** to an uninterrupted run — the chaos test in
//!   `tests/chaos.rs` enforces exactly that.
//! * **Load shedding and graceful drain** — `POST /admin/drain` stops
//!   admissions (`503`), stops running jobs at their next checkpointed
//!   boundary, and re-queues them durably; the crate forbids `unsafe`
//!   so there is no signal handler — `SIGKILL` is always safe by
//!   design, which is what "crash-only" means here.
//!
//! The chaos seams are the `serve.request` / `serve.job.step` /
//! `serve.checkpoint` fault sites (see [`a2a_obs::fault`]).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod client;
pub mod http;
pub mod job;
pub mod queue;
pub mod server;

pub use job::{build_islands_result, build_result, JobSpec, RESULT_SCHEMA};
pub use queue::{JobQueue, QueueConfig, QueuedJob, SubmitError};
pub use server::{Server, ServerHandle, ServeConfig};

//! Bounded, tenant-fair priority queue — the admission-control half of
//! the supervision layer.
//!
//! Three limits compose here:
//!
//! * a global `capacity` on queued jobs (backpressure: `429` + a
//!   `Retry-After` hint at the HTTP layer),
//! * a per-tenant cap on *queued* jobs (one tenant cannot monopolise
//!   the backlog),
//! * a per-tenant cap on *running* jobs (fair scheduling: `pop` skips
//!   tenants already at their concurrency share, even if their jobs
//!   out-prioritise everyone else's).
//!
//! Eligible jobs dispatch highest-priority first, FIFO (by submission
//! sequence number) within a priority. Recovery re-admission
//! ([`JobQueue::recover`]) deliberately bypasses the caps: durable jobs
//! that were already admitted before a crash must never be shed on
//! restart.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Admission limits. All three are hard caps, checked at submit/pop.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Global cap on queued (not yet running) jobs.
    pub capacity: usize,
    /// Per-tenant cap on queued jobs.
    pub tenant_max_queued: usize,
    /// Per-tenant cap on concurrently running jobs.
    pub tenant_max_running: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self { capacity: 64, tenant_max_queued: 16, tenant_max_running: 2 }
    }
}

/// One admitted, not-yet-running job.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Job id (a validated `JobStore` id).
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Scheduling priority, higher first.
    pub priority: u32,
    /// Admission sequence number — the FIFO tiebreak within a
    /// priority, and the source of auto-assigned job ids.
    pub seq: u64,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at global capacity — shed load, retry later.
    Full,
    /// Tenant at its queued-jobs quota.
    TenantQuota,
    /// Queue closed (server draining or shutting down).
    Closed,
}

#[derive(Debug, Default)]
struct Inner {
    jobs: Vec<QueuedJob>,
    queued_per_tenant: HashMap<String, usize>,
    running_per_tenant: HashMap<String, usize>,
    running_total: usize,
    next_seq: u64,
    closed: bool,
}

impl Inner {
    /// Index of the best eligible job: highest priority, then lowest
    /// seq, skipping tenants at their running cap.
    fn pick(&self, tenant_max_running: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, job) in self.jobs.iter().enumerate() {
            let running = self.running_per_tenant.get(&job.tenant).copied().unwrap_or(0);
            if running >= tenant_max_running {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let cur = &self.jobs[b];
                    job.priority > cur.priority
                        || (job.priority == cur.priority && job.seq < cur.seq)
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }
}

/// The queue itself. All methods are safe to call from any thread.
#[derive(Debug)]
pub struct JobQueue {
    config: QueueConfig,
    inner: Mutex<Inner>,
    wake: Condvar,
}

impl JobQueue {
    /// An empty open queue.
    #[must_use]
    pub fn new(config: QueueConfig) -> Self {
        Self { config, inner: Mutex::new(Inner::default()), wake: Condvar::new() }
    }

    /// Reserves the next admission sequence number (used to mint
    /// auto-assigned job ids *before* the durable manifest is written).
    pub fn next_seq(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        seq
    }

    /// Admits a new job, enforcing every cap.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] naming the refused limit.
    pub fn submit(&self, id: &str, tenant: &str, priority: u32, seq: u64) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.jobs.len() >= self.config.capacity {
            return Err(SubmitError::Full);
        }
        if inner.queued_per_tenant.get(tenant).copied().unwrap_or(0)
            >= self.config.tenant_max_queued
        {
            return Err(SubmitError::TenantQuota);
        }
        inner.next_seq = inner.next_seq.max(seq + 1);
        inner.jobs.push(QueuedJob {
            id: id.to_string(),
            tenant: tenant.to_string(),
            priority,
            seq,
        });
        *inner.queued_per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        self.wake.notify_one();
        Ok(())
    }

    /// Re-admits a durable job found on disk at startup, or a job
    /// preempted by drain. Bypasses capacity and quota caps: the job
    /// was already accepted once and must not be lost.
    pub fn recover(&self, id: &str, tenant: &str, priority: u32, seq: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.next_seq = inner.next_seq.max(seq + 1);
        inner.jobs.push(QueuedJob {
            id: id.to_string(),
            tenant: tenant.to_string(),
            priority,
            seq,
        });
        *inner.queued_per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        self.wake.notify_one();
    }

    /// Blocks until an eligible job is available (claiming it and
    /// counting it as running) or the queue is closed (`None`). Jobs
    /// still queued at close stay queued — they are durable on disk and
    /// recovered on the next start, not lost.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(i) = inner.pick(self.config.tenant_max_running) {
                let job = inner.jobs.remove(i);
                if let Some(n) = inner.queued_per_tenant.get_mut(&job.tenant) {
                    *n = n.saturating_sub(1);
                }
                *inner.running_per_tenant.entry(job.tenant.clone()).or_insert(0) += 1;
                inner.running_total += 1;
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.wake.wait(inner).unwrap();
        }
    }

    /// Releases a tenant's running slot after its job finished (or was
    /// re-queued via [`JobQueue::recover`]).
    pub fn done(&self, tenant: &str) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(n) = inner.running_per_tenant.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
        inner.running_total = inner.running_total.saturating_sub(1);
        // A freed slot may make a previously skipped tenant eligible.
        self.wake.notify_all();
    }

    /// Closes the queue: rejects new submissions and makes `pop` return
    /// `None` once no eligible job remains claimable by the caller.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.wake.notify_all();
    }

    /// Queued (not running) job count.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// Currently running job count.
    pub fn running(&self) -> usize {
        self.inner.lock().unwrap().running_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn queue(capacity: usize, queued: usize, running: usize) -> JobQueue {
        JobQueue::new(QueueConfig {
            capacity,
            tenant_max_queued: queued,
            tenant_max_running: running,
        })
    }

    #[test]
    fn capacity_and_quota_reject() {
        let q = queue(2, 1, 1);
        q.submit("a", "t1", 1, q.next_seq()).unwrap();
        assert_eq!(q.submit("b", "t1", 1, q.next_seq()), Err(SubmitError::TenantQuota));
        q.submit("c", "t2", 1, q.next_seq()).unwrap();
        assert_eq!(q.submit("d", "t3", 1, q.next_seq()), Err(SubmitError::Full));
        q.close();
        assert_eq!(q.submit("e", "t4", 1, q.next_seq()), Err(SubmitError::Closed));
    }

    #[test]
    fn pop_orders_by_priority_then_seq() {
        let q = queue(8, 8, 8);
        q.submit("low-early", "t", 1, q.next_seq()).unwrap();
        q.submit("high", "t", 5, q.next_seq()).unwrap();
        q.submit("low-late", "t", 1, q.next_seq()).unwrap();
        let order: Vec<String> = (0..3).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, ["high", "low-early", "low-late"]);
    }

    #[test]
    fn running_cap_keeps_tenants_fair() {
        let q = queue(8, 8, 1);
        q.submit("t1-a", "t1", 9, q.next_seq()).unwrap();
        q.submit("t1-b", "t1", 9, q.next_seq()).unwrap();
        q.submit("t2-a", "t2", 1, q.next_seq()).unwrap();
        assert_eq!(q.pop().unwrap().id, "t1-a");
        // t1 is at its running cap, so its higher-priority job is
        // skipped in favour of t2's.
        assert_eq!(q.pop().unwrap().id, "t2-a");
        q.done("t1");
        assert_eq!(q.pop().unwrap().id, "t1-b");
        assert_eq!(q.running(), 2);
    }

    #[test]
    fn close_unblocks_poppers_and_preserves_backlog() {
        let q = Arc::new(queue(8, 8, 1));
        q.submit("only", "t", 1, q.next_seq()).unwrap();
        assert!(q.pop().is_some());
        // "blocked" has an eligible tenant cap of 1 and t is running,
        // so this would block forever without close().
        q.submit("blocked", "t", 1, q.next_seq()).unwrap();
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert!(popper.join().unwrap().is_none(), "close returns None to blocked poppers");
        assert_eq!(q.depth(), 1, "unclaimed jobs survive close (durable on disk)");
    }

    #[test]
    fn recover_bypasses_caps() {
        let q = queue(1, 1, 1);
        q.submit("a", "t", 1, q.next_seq()).unwrap();
        q.recover("b", "t", 1, 7);
        q.recover("c", "t", 1, 9);
        assert_eq!(q.depth(), 3);
        assert!(q.next_seq() >= 10, "recovery advances the seq counter");
    }
}

//! `a2a-serve` — the crash-only experiment service as a process.
//!
//! ```text
//! a2a-serve --addr 127.0.0.1:8080 --store serve-store \
//!     [--capacity N] [--tenant-queued N] [--tenant-running N] \
//!     [--executors N] [--threads N] [--cadence N]
//! ```
//!
//! Prints exactly one `listening on <addr>` line once the socket is
//! bound and recovery finished (the chaos harness reads it to learn the
//! ephemeral port), then serves until killed or drained. There is no
//! signal handler on purpose: `SIGKILL` is the supported way to stop
//! it, and a restart on the same `--store` resumes every in-flight job
//! bit-identically.

use a2a_serve::{ServeConfig, Server};
use std::io::Write;

fn main() {
    a2a_obs::init_from_env();
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--store" => cfg.store_root = value("--store").into(),
            "--capacity" => cfg.queue.capacity = parse(&value("--capacity")),
            "--tenant-queued" => cfg.queue.tenant_max_queued = parse(&value("--tenant-queued")),
            "--tenant-running" => cfg.queue.tenant_max_running = parse(&value("--tenant-running")),
            "--executors" => cfg.executors = parse(&value("--executors")),
            "--threads" => cfg.worker_threads = parse(&value("--threads")),
            "--cadence" => cfg.cadence = parse(&value("--cadence")),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let handle = Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("cannot start: {e}");
        std::process::exit(1);
    });
    println!("listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    // Sleep forever: all the work happens on the server's own threads,
    // and the process is stopped by SIGKILL (or drained over HTTP and
    // then killed). Crash-only — there is nothing to tear down.
    loop {
        std::thread::park();
    }
}

fn parse(text: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("`{text}` is not a number");
        std::process::exit(2);
    })
}

//! Job specs (the submitted JSON) and sealed result documents.

use a2a_grid::GridKind;
use a2a_obs::json::Json;
use a2a_obs::schema;
use a2a_run::{IslandsReport, RunReport};

/// Schema identifier of a job's sealed result document.
pub const RESULT_SCHEMA: &str = "a2a-serve/result/v1";

/// A parsed evolution-job submission. Every field except `tenant` has
/// a service default, so the minimal useful submission is
/// `{"tenant": "t", "id": "job-1"}`.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job id (optional at submit; the server assigns `j<seq>` when
    /// absent).
    pub id: Option<String>,
    /// Owning tenant (required).
    pub tenant: String,
    /// Scheduling priority, higher first (default 1).
    pub priority: u32,
    /// Grid family (`"S"` or `"T"`, default `"T"`).
    pub grid: GridKind,
    /// Torus side length (default 8).
    pub m: u16,
    /// Agent count (default 4).
    pub k: usize,
    /// Random initial configurations on top of the 3 designed ones
    /// (default 4).
    pub configs: usize,
    /// GA generations (default 4).
    pub generations: usize,
    /// GA seed (default 1).
    pub seed: u64,
    /// GA pool size (default 8; the paper's 20 is heavyweight for a
    /// service job — ask for it explicitly).
    pub population: usize,
    /// Simulation step budget override (`0` keeps the evaluator's
    /// default).
    pub t_max: u32,
    /// Wall-clock deadline in milliseconds, checked at generation
    /// boundaries; `None` means no deadline.
    pub deadline_ms: Option<u64>,
    /// Per-job retry budget override (`None` uses the server's).
    pub max_retries: Option<u32>,
    /// Island count; `0` (the default) runs the single-pool procedure,
    /// anything larger the ring island model (DESIGN.md §9).
    pub islands: usize,
    /// Generations per island epoch (only read when `islands > 0`).
    pub epoch: usize,
    /// Individuals migrating to the ring successor per epoch (only
    /// read when `islands > 0`; must leave room in the pool).
    pub migrants: usize,
}

fn num(doc: &Json, key: &str, default: u64) -> Result<u64, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => {
            let v = v.as_f64().ok_or_else(|| format!("`{key}` must be a number"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("`{key}` must be a non-negative integer"));
            }
            Ok(v as u64)
        }
    }
}

impl JobSpec {
    /// Parses and validates a submission document.
    ///
    /// # Errors
    ///
    /// A message naming the first invalid member (reported as `400`).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let tenant = doc
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or("`tenant` is required")?
            .to_string();
        if tenant.is_empty() || tenant.len() > 64 {
            return Err("`tenant` must be 1..=64 characters".to_string());
        }
        let id = match doc.get("id") {
            None => None,
            Some(v) => {
                let id = v.as_str().ok_or("`id` must be a string")?;
                a2a_run::validate_job_id(id)?;
                Some(id.to_string())
            }
        };
        let grid = match doc.get("grid").and_then(Json::as_str).unwrap_or("T") {
            "T" | "t" => GridKind::Triangulate,
            "S" | "s" => GridKind::Square,
            other => return Err(format!("`grid` must be \"S\" or \"T\", got `{other}`")),
        };
        let spec = Self {
            id,
            tenant,
            priority: u32::try_from(num(doc, "priority", 1)?).map_err(|e| e.to_string())?,
            grid,
            m: u16::try_from(num(doc, "m", 8)?).map_err(|e| e.to_string())?,
            k: num(doc, "k", 4)? as usize,
            configs: num(doc, "configs", 4)? as usize,
            generations: num(doc, "generations", 4)? as usize,
            seed: num(doc, "seed", 1)?,
            population: num(doc, "population", 8)? as usize,
            t_max: u32::try_from(num(doc, "t_max", 0)?).map_err(|e| e.to_string())?,
            deadline_ms: doc.get("deadline_ms").map(|_| num(doc, "deadline_ms", 0)).transpose()?,
            max_retries: doc
                .get("max_retries")
                .map(|_| num(doc, "max_retries", 0))
                .transpose()?
                .map(|v| u32::try_from(v).unwrap_or(u32::MAX)),
            islands: num(doc, "islands", 0)? as usize,
            epoch: num(doc, "epoch", 2)? as usize,
            migrants: num(doc, "migrants", 1)? as usize,
        };
        if spec.m < 2 {
            return Err("`m` must be at least 2".to_string());
        }
        if spec.k == 0 {
            return Err("`k` must be at least 1".to_string());
        }
        if spec.generations == 0 {
            return Err("`generations` must be at least 1".to_string());
        }
        if spec.population < 2 {
            return Err("`population` must be at least 2".to_string());
        }
        if spec.islands > 0 {
            if spec.islands > 16 {
                return Err("`islands` must be at most 16".to_string());
            }
            if spec.epoch == 0 {
                return Err("`epoch` must be at least 1 when `islands` is set".to_string());
            }
            if spec.migrants >= spec.population {
                return Err("`migrants` must be smaller than `population`".to_string());
            }
        }
        Ok(spec)
    }
}

/// Builds the sealed result document for a completed run. Everything in
/// it is a pure function of the job spec (context digest, best genome
/// digits, fitness numbers, a digest over the full generation history),
/// so an interrupted-and-resumed job's result is **byte-equal** to an
/// uninterrupted control run's — the property the chaos suite compares
/// directly.
#[must_use]
pub fn build_result(id: &str, digest: &str, report: &RunReport) -> Json {
    let best = &report.outcome.pool[0];
    let history_bytes: String =
        report.outcome.history.iter().map(|s| s.to_json().to_string()).collect();
    let pool_digits: Vec<Json> =
        report.outcome.pool.iter().map(|ind| Json::Str(ind.genome.to_string())).collect();
    schema::seal(
        Json::object()
            .with("schema", RESULT_SCHEMA)
            .with("id", id)
            .with("digest", digest)
            .with(
                "best",
                Json::object()
                    .with("genome", best.genome.to_string())
                    .with("fitness", best.report.fitness)
                    .with("successes", best.report.successes as u64)
                    .with("total", best.report.total as u64),
            )
            .with("pool", Json::Arr(pool_digits))
            .with("history_len", report.outcome.history.len() as u64)
            .with(
                "history_digest",
                format!("{:016x}", schema::fnv1a64(history_bytes.as_bytes())),
            ),
    )
}

/// Island-model counterpart of [`build_result`]: the sealed document of
/// a completed islands job. Same schema, `"mode": "islands"`, the
/// globally best individual across islands plus each island's champion
/// — and the same purity guarantee: byte-equal after kill/resume.
#[must_use]
pub fn build_islands_result(id: &str, digest: &str, report: &IslandsReport) -> Json {
    let best = report.outcome.best();
    let history_bytes: String = report
        .outcome
        .islands
        .iter()
        .flat_map(|island| island.history.iter())
        .map(|s| s.to_json().to_string())
        .collect();
    let islands: Vec<Json> = report
        .outcome
        .islands
        .iter()
        .map(|island| {
            let top = island.best();
            Json::object()
                .with("genome", top.genome.to_string())
                .with("fitness", top.report.fitness)
                .with("successes", top.report.successes as u64)
                .with("total", top.report.total as u64)
        })
        .collect();
    schema::seal(
        Json::object()
            .with("schema", RESULT_SCHEMA)
            .with("id", id)
            .with("digest", digest)
            .with("mode", "islands")
            .with(
                "best",
                Json::object()
                    .with("genome", best.genome.to_string())
                    .with("fitness", best.report.fitness)
                    .with("successes", best.report.successes as u64)
                    .with("total", best.report.total as u64),
            )
            .with("islands", Json::Arr(islands))
            .with(
                "history_digest",
                format!("{:016x}", schema::fnv1a64(history_bytes.as_bytes())),
            ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_fill_a_minimal_submission() {
        let doc = Json::object().with("tenant", "acme");
        let spec = JobSpec::from_json(&doc).unwrap();
        assert!(spec.id.is_none());
        assert_eq!(spec.tenant, "acme");
        assert_eq!(spec.priority, 1);
        assert_eq!(spec.grid, GridKind::Triangulate);
        assert_eq!((spec.m, spec.k, spec.configs), (8, 4, 4));
        assert_eq!((spec.generations, spec.seed, spec.population), (4, 1, 8));
        assert_eq!(spec.t_max, 0);
        assert!(spec.deadline_ms.is_none() && spec.max_retries.is_none());
        assert_eq!(spec.islands, 0, "single-pool mode by default");
    }

    #[test]
    fn islands_submission_parses_and_validates() {
        let doc = Json::object()
            .with("tenant", "acme")
            .with("islands", 3u64)
            .with("epoch", 2u64)
            .with("migrants", 1u64);
        let spec = JobSpec::from_json(&doc).unwrap();
        assert_eq!((spec.islands, spec.epoch, spec.migrants), (3, 2, 1));
        for (doc, needle) in [
            (Json::object().with("tenant", "t").with("islands", 99u64), "islands"),
            (
                Json::object().with("tenant", "t").with("islands", 2u64).with("epoch", 0u64),
                "epoch",
            ),
            (
                Json::object().with("tenant", "t").with("islands", 2u64).with("migrants", 8u64),
                "migrants",
            ),
        ] {
            let err = JobSpec::from_json(&doc).unwrap_err();
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
    }

    #[test]
    fn invalid_submissions_are_named() {
        for (doc, needle) in [
            (Json::object(), "tenant"),
            (Json::object().with("tenant", "t").with("grid", "Q"), "grid"),
            (Json::object().with("tenant", "t").with("k", 0u64), "k"),
            (Json::object().with("tenant", "t").with("generations", 0u64), "generations"),
            (Json::object().with("tenant", "t").with("population", 1u64), "population"),
            (Json::object().with("tenant", "t").with("id", "a/b"), "character"),
            (Json::object().with("tenant", "t").with("seed", -3.0), "seed"),
        ] {
            let err = JobSpec::from_json(&doc).unwrap_err();
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
    }
}

//! A tiny blocking HTTP client — just enough for the test suites and
//! the load generator to drive the service without external crates.

use a2a_obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::TcpStream;

/// One parsed reply.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl HttpReply {
    /// First header value by (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// The parse error message.
    pub fn json(&self) -> Result<Json, String> {
        json::parse(&self.body).map_err(|e| format!("bad JSON body: {e}"))
    }
}

fn request(method: &str, addr: &str, path: &str, body: Option<&str>) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_read_timeout(Some(crate::http::SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(crate::http::SOCKET_TIMEOUT));
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty reply"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(HttpReply { status, headers, body: body.to_string() })
}

/// `GET path` against `addr` (`host:port`).
///
/// # Errors
///
/// Transport failures or an unparseable reply.
pub fn get(addr: &str, path: &str) -> std::io::Result<HttpReply> {
    request("GET", addr, path, None)
}

/// `POST path` with a JSON body against `addr`.
///
/// # Errors
///
/// Transport failures or an unparseable reply.
pub fn post(addr: &str, path: &str, body: &str) -> std::io::Result<HttpReply> {
    request("POST", addr, path, Some(body))
}

//! A minimal JSON document model with writer and parser.
//!
//! The workspace's vendored `serde` is an inert facade (the derives
//! expand to nothing and no format crate exists), so the JSONL sink and
//! the schema validators need their own encoding. This module keeps the
//! subset the observability layer uses: objects preserve insertion
//! order, numbers are `f64` (written without a fractional part when
//! integral), and parsing is strict enough to round-trip everything the
//! writer produces.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats serialise to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integral values print without a decimal point.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    #[must_use]
    pub fn object() -> Self {
        Self::Obj(Vec::new())
    }

    /// Inserts or replaces `key` in an object. Panics on non-objects
    /// (construction-time programming error, never data-dependent).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        let Self::Obj(entries) = self else { panic!("Json::set on a non-object") };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.into(),
            None => entries.push((key.to_string(), value.into())),
        }
        self
    }

    /// Builder-style [`Json::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    /// Object member lookup (`None` for absent keys or non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this node is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this node is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this node is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this node is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Self::Obj(v) => Some(v),
            _ => None,
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Self::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Self::Num(f64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Self::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Self::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Self::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_num(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        return f.write_str("null");
    }
    // Integral magnitudes inside the exactly-representable range print
    // as integers so counters stay readable and round-trip bit-exact.
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        write!(f, "{}", v as i64)
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        write!(f, "{v:?}")
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Null => f.write_str("null"),
            Self::Bool(b) => write!(f, "{b}"),
            Self::Num(v) => write_num(f, *v),
            Self::Str(s) => write_escaped(f, s),
            Self::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Self::Obj(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses one JSON document, rejecting trailing non-whitespace.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), at: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.at));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.bytes.len()
            && matches!(self.bytes[self.at], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.at))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(kw.as_bytes()) {
            self.at += kw.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .expect("digits and sign characters are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_nested_documents() {
        let doc = Json::object()
            .with("name", "kernel.run")
            .with("t_comm", 42u64)
            .with("ratio", 0.666)
            .with("ok", true)
            .with("tags", vec!["a", "b"])
            .with("nested", Json::object().with("x", 1u64));
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(3u64).to_string(), "3");
        assert_eq!(Json::from(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\nbreak \"quote\" back\\slash\ttab";
        let doc = Json::Str(s.to_string());
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
        assert_eq!(parse("\"π\"").unwrap(), Json::Str("π".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"open", "{}{}"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn get_and_set_replace() {
        let mut doc = Json::object().with("a", 1u64);
        doc.set("a", 2u64);
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("missing"), None);
    }
}

//! Structured events and the dispatch path to the attached sinks.

use crate::json::Json;
use crate::sink::for_each_sink;
use crate::value::Value;
use crate::Level;
use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Worker id tag for events emitted from pool threads (set by
    /// `a2a_ga::parallel_map`), so per-thread throughput is attributable.
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Tags events emitted from this thread with a worker id (`None`
/// untags). Worker pools call this once per spawned thread.
pub fn set_worker_id(id: Option<usize>) {
    WORKER.with(|w| w.set(id));
}

/// The current thread's worker tag, if any.
#[must_use]
pub fn worker_id() -> Option<usize> {
    WORKER.with(Cell::get)
}

/// One structured event: a named, levelled, timestamped record with
/// typed fields. Construct with [`Event::new`], attach fields with
/// [`Event::field`], and hand to [`emit`] — or use the
/// [`event!`](crate::event!) macro, which skips construction entirely
/// when the level is disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Severity of the record.
    pub level: Level,
    /// Dot-separated name (`kernel.run`, `ga.generation`, …) — the
    /// span taxonomy is documented in DESIGN.md §7.
    pub name: &'static str,
    /// Milliseconds since the process's first observability call.
    pub t_ms: f64,
    /// Worker id when emitted from a tagged pool thread.
    pub worker: Option<usize>,
    /// Key/value payload in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event stamped with the current clock and worker tag.
    #[must_use]
    pub fn new(level: Level, name: &'static str) -> Self {
        Self { level, name, t_ms: crate::clock_ms(), worker: worker_id(), fields: Vec::new() }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// The JSONL form — see [`crate::schema`] for the contract.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object()
            .with("t_ms", (self.t_ms * 1000.0).round() / 1000.0)
            .with("level", self.level.name())
            .with("event", self.name);
        if let Some(w) = self.worker {
            doc.set("worker", w);
        }
        let fields: Vec<(String, Json)> =
            self.fields.iter().map(|(k, v)| ((*k).to_string(), v.to_json())).collect();
        doc.set("fields", Json::Obj(fields));
        doc
    }
}

impl fmt::Display for Event {
    /// The human-readable single-line form used by the stderr sink.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10.1}ms {:>5}] {}", self.t_ms, self.level, self.name)?;
        if let Some(w) = self.worker {
            write!(f, " (w{w})")?;
        }
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Dispatches `event` to every attached sink whose verbosity admits it,
/// honouring the `A2A_LOG` prefix filters. The flight recorder, when
/// on, sees every emitted event first — *before* the sink filters, so
/// the black box keeps records no sink wanted.
pub fn emit(event: Event) {
    crate::flight::note_event(&event);
    if !crate::enabled_for(event.level, event.name) {
        return;
    }
    for_each_sink(|sink| {
        if event.level <= sink.verbosity() {
            sink.record(&event);
        }
    });
}

/// Flushes every attached sink (binaries call this before exiting).
pub fn flush_all() {
    for_each_sink(|sink| sink.flush());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_tag_is_thread_local() {
        set_worker_id(Some(7));
        assert_eq!(worker_id(), Some(7));
        let other = std::thread::spawn(worker_id).join().unwrap();
        assert_eq!(other, None);
        set_worker_id(None);
    }

    #[test]
    fn event_json_has_required_members() {
        set_worker_id(Some(2));
        let e = Event::new(Level::Info, "test.event").field("k", 1u64).field("s", "x");
        set_worker_id(None);
        let doc = e.to_json();
        assert_eq!(doc.get("level").and_then(Json::as_str), Some("info"));
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("test.event"));
        assert_eq!(doc.get("worker").and_then(Json::as_f64), Some(2.0));
        let fields = doc.get("fields").unwrap();
        assert_eq!(fields.get("k").and_then(Json::as_f64), Some(1.0));
        assert_eq!(fields.get("s").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn display_is_single_line() {
        let e = Event::new(Level::Warn, "a.b").field("x", 2u64);
        let text = e.to_string();
        assert!(text.contains("a.b") && text.contains("x=2") && !text.contains('\n'));
    }
}

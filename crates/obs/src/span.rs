//! Spans: scoped timers that feed histograms and emit close events.

use crate::{global, Level};
use std::time::Instant;

/// A timed region. [`Span::enter`] captures the clock; dropping the
/// guard records the elapsed microseconds into the global histogram
/// `<name>.us` (when metrics are enabled) and emits a `Debug`-level
/// event carrying `elapsed_us`.
///
/// Construction is gated the same way as events: when the observability
/// layer is fully disabled the guard holds no timestamp and the drop is
/// a no-op, so spans can stay in hot(ish) paths.
///
/// ```
/// {
///     let _span = a2a_obs::Span::enter("ga.rank");
///     // ... evaluate the population ...
/// } // records ga.rank.us and emits the close event here
/// ```
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span named `name` (dot-separated, like events).
    pub fn enter(name: &'static str) -> Self {
        let armed = crate::metrics_enabled() || crate::enabled(Level::Debug);
        Self { name, start: armed.then(Instant::now) }
    }

    /// Elapsed microseconds so far (0 when the span is disarmed).
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.start.map_or(0, |s| s.elapsed().as_micros().min(u128::from(u64::MAX)) as u64)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        if crate::metrics_enabled() {
            // One allocation per close for the histogram name; spans sit
            // at run/generation granularity, never inside step loops.
            let hist = global().histogram(&format!("{}.us", self.name));
            hist.record_duration_us(elapsed);
        }
        if crate::enabled(Level::Debug) {
            crate::emit(
                crate::Event::new(Level::Debug, self.name)
                    .field("elapsed_us", elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_span_is_inert() {
        // If nothing raised the level in this test process, the span
        // holds no timestamp at all.
        let span = Span::enter("test.span");
        if !crate::metrics_enabled() && !crate::enabled(Level::Debug) {
            assert_eq!(span.elapsed_us(), 0);
        }
    }

    #[test]
    fn armed_span_records_histogram() {
        crate::set_metrics(true);
        {
            let _span = Span::enter("test.armed");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = global().histogram("test.armed.us").snapshot();
        assert!(snap.count >= 1);
        assert!(snap.max >= 500, "slept ≥1ms, recorded {}", snap.max);
    }
}

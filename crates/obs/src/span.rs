//! Spans: scoped timers that feed histograms, emit close events, carry
//! causal parent/child identity (see [`crate::trace`]) and leave
//! enter/exit records in the flight recorder.

use crate::flight::{self, Kind};
use crate::{global, trace, Level};
use std::time::Instant;

/// A timed region. [`Span::enter`] captures the clock; dropping the
/// guard records the elapsed microseconds into the global histogram
/// `<name>.us` (when metrics are enabled) and emits a `Debug`-level
/// event carrying `elapsed_us`.
///
/// An armed span also has *identity*: a process-unique id and the id of
/// the span that was current on its thread when it opened (its causal
/// parent — possibly [`trace::adopt`]ed from another thread). Captured
/// traces ([`trace::start_capture`]) reconstruct the task tree from
/// exactly these two numbers.
///
/// Construction is gated the same way as events: when the observability
/// layer is fully disabled the guard holds no timestamp and the drop is
/// a no-op, so spans can stay in hot(ish) paths. Trace capture and the
/// flight recorder arm spans too, independent of the log level.
///
/// ```
/// {
///     let _span = a2a_obs::Span::enter("ga.rank");
///     // ... evaluate the population ...
/// } // records ga.rank.us and emits the close event here
/// ```
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    start_ms: f64,
    id: u64,
    parent: u64,
}

impl Span {
    /// Starts a span named `name` (dot-separated, like events).
    pub fn enter(name: &'static str) -> Self {
        let armed = crate::metrics_enabled()
            || crate::enabled(Level::Debug)
            || trace::capturing()
            || flight::enabled();
        if !armed {
            return Self { name, start: None, start_ms: 0.0, id: 0, parent: 0 };
        }
        let (id, parent) = trace::begin();
        flight::record(Kind::SpanEnter, name, id, parent);
        Self { name, start: Some(Instant::now()), start_ms: crate::clock_ms(), id, parent }
    }

    /// Elapsed microseconds so far (0 when the span is disarmed).
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.start.map_or(0, |s| s.elapsed().as_micros().min(u128::from(u64::MAX)) as u64)
    }

    /// This span's process-unique id (0 when disarmed).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of this span's causal parent (0 = root or disarmed).
    #[must_use]
    pub fn parent(&self) -> u64 {
        self.parent
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let elapsed_us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        trace::finish(trace::SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ms: self.start_ms,
            elapsed_us,
            thread: crate::thread_ordinal(),
            worker: crate::worker_id(),
        });
        flight::record(Kind::SpanExit, self.name, self.id, elapsed_us);
        if crate::metrics_enabled() {
            // One allocation per close for the histogram name; spans sit
            // at run/generation granularity, never inside step loops.
            let hist = global().histogram(&format!("{}.us", self.name));
            hist.record_duration_us(elapsed);
        }
        if crate::enabled(Level::Debug) {
            crate::emit(
                crate::Event::new(Level::Debug, self.name)
                    .field("elapsed_us", elapsed_us)
                    .field("span", self.id)
                    .field("parent", self.parent),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_span_is_inert() {
        // If nothing raised the level in this test process, the span
        // holds no timestamp at all.
        let span = Span::enter("test.span");
        if !crate::metrics_enabled()
            && !crate::enabled(Level::Debug)
            && !trace::capturing()
            && !flight::enabled()
        {
            assert_eq!(span.elapsed_us(), 0);
            assert_eq!(span.id(), 0);
        }
    }

    #[test]
    fn armed_span_records_histogram() {
        crate::set_metrics(true);
        {
            let _span = Span::enter("test.armed");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = global().histogram("test.armed.us").snapshot();
        assert!(snap.count >= 1);
        assert!(snap.max >= 500, "slept ≥1ms, recorded {}", snap.max);
    }

    #[test]
    fn nested_spans_link_parent_to_child() {
        crate::set_metrics(true);
        let outer = Span::enter("test.outer");
        let inner = Span::enter("test.inner");
        assert_ne!(outer.id(), 0);
        assert_eq!(inner.parent(), outer.id());
        drop(inner);
        let sibling = Span::enter("test.sibling");
        assert_eq!(sibling.parent(), outer.id(), "closing a child restores the parent");
    }
}

//! The thread-safe metrics registry: named counters, gauges and
//! log-scale histograms with lock-free updates and associative merge.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of power-of-two histogram buckets. Bucket 0 holds the value
/// 0, bucket `b` (1 ≤ b < 63) the values in `[2^(b-1), 2^b)`, and the
/// last bucket everything from `2^62` up.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotone event counter. Updates are relaxed atomic adds, safe to
/// call from any thread without coordination.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins signed gauge (pool sizes, queue depths).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-scale (power-of-two bucket) histogram of `u64` samples.
///
/// Recording is four relaxed atomic operations (count, sum, min/max,
/// bucket), so concurrent writers never block; the trade-off is that a
/// snapshot taken while writers are active may be off by the in-flight
/// samples — fine for progress reporting, irrelevant once a run ends.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket a value lands in: 0 for 0, else `64 − leading_zeros`,
/// clamped into the table.
#[must_use]
pub(crate) fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive-exclusive value range `[lo, hi)` of bucket `b` (the last
/// bucket is unbounded and reports `hi = u64::MAX`).
#[must_use]
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 1),
        _ if b >= HISTOGRAM_BUCKETS - 1 => (1u64 << (HISTOGRAM_BUCKETS - 2), u64::MAX),
        _ => (1u64 << (b - 1), 1u64 << b),
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `Duration` in whole microseconds.
    #[inline]
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds another histogram's samples into this one (bucket-wise
    /// adds and min/max merges — associative and commutative, which the
    /// property tests pin down on the snapshot form).
    pub fn merge_from(&self, other: &Histogram) {
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the histogram.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state, used for merging, quantile
/// estimation and JSON export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { count: 0, sum: 0, min: 0, max: 0, buckets: [0; HISTOGRAM_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Records into the snapshot directly (the non-atomic twin of
    /// [`Histogram::record`], for single-threaded aggregation).
    pub fn record(&mut self, v: u64) {
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.max = self.max.max(v);
        self.count += 1;
        // Wrapping, like the atomic twin (`fetch_add` wraps): the sum
        // stays exact for every realistic workload and the merge
        // algebra stays total for adversarial property inputs.
        self.sum = self.sum.wrapping_add(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Merges `other` into `self`. Associative and commutative with
    /// [`HistogramSnapshot::default`] as identity.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Mean sample value (`NaN` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }

    /// Bucket-resolution quantile estimate: the geometric midpoint of
    /// the bucket holding the `q`-quantile sample (`q` clamped to
    /// `[0, 1]`; 0 when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(b);
                let mid = ((lo as f64) * (hi.max(1) as f64)).sqrt();
                return (mid as u64).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate — `quantile(0.50)`. Like all quantiles on a
    /// log-scale histogram the estimate is bucket-resolution: within a
    /// factor of 2 of some true sample in rank order (the property
    /// suite pins the exact bound).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate — `quantile(0.90)`.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate — `quantile(0.99)`.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// JSON form: `{count, sum, min, max, mean, p50, p90, p99,
    /// buckets: [[lo, hi, n], …]}` with only non-empty buckets listed.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                let (lo, hi) = bucket_bounds(b);
                Json::Arr(vec![Json::from(lo), Json::from(hi), Json::from(n)])
            })
            .collect();
        Json::object()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("min", self.min)
            .with("max", self.max)
            .with("mean", if self.count == 0 { 0.0 } else { self.mean() })
            .with("p50", self.p50())
            .with("p90", self.p90())
            .with("p99", self.p99())
            .with("buckets", Json::Arr(buckets))
    }

    /// Parses the [`HistogramSnapshot::to_json`] form back.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped member.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let field = |k: &str| {
            json.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histogram missing numeric `{k}`"))
        };
        let mut snap = HistogramSnapshot {
            count: field("count")? as u64,
            sum: field("sum")? as u64,
            min: field("min")? as u64,
            max: field("max")? as u64,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        let buckets = json
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram missing `buckets` array")?;
        for entry in buckets {
            let triple = entry.as_arr().ok_or("bucket entry must be [lo, hi, n]")?;
            let [lo, _hi, n] = triple else { return Err("bucket entry must be [lo, hi, n]".into()) };
            let lo = lo.as_f64().ok_or("bucket lo must be a number")? as u64;
            let n = n.as_f64().ok_or("bucket count must be a number")? as u64;
            snap.buckets[bucket_of(lo)] += n;
        }
        Ok(snap)
    }
}

/// A named collection of metrics. Handles are `Arc`s: look a metric up
/// once, then update it lock-free from any thread.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("registry lock never poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut write = map.write().expect("registry lock never poisoned");
    Arc::clone(write.entry(name.to_string()).or_default())
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`global`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// A point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock never poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock never poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock never poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// JSON form: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: <histogram json>}}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters =
            Json::Obj(self.counters.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect());
        let gauges =
            Json::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect());
        let histograms = Json::Obj(
            self.histograms.iter().map(|(k, v)| (k.clone(), v.to_json())).collect(),
        );
        Json::object()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }
}

/// The process-global registry used by the instrumented layers.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_work() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.incr();
        c.add(4);
        assert_eq!(reg.counter("x").get(), 5);
        let g = reg.gauge("y");
        g.set(-3);
        g.add(1);
        assert_eq!(reg.gauge("y").get(), -2);
    }

    #[test]
    fn histogram_buckets_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for v in [0u64, 1, 7, 63, 64, 1_000_000, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && (v < hi || hi == u64::MAX), "{v}");
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 200] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 306);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 200);
        assert!((s.mean() - 61.2).abs() < 1e-9);
        assert!(s.quantile(0.0) >= 1 && s.quantile(0.0) <= 3);
        assert!(s.quantile(1.0) >= 100);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut s = HistogramSnapshot::default();
        for v in [0u64, 5, 5, 90, 1 << 40] {
            s.record(v);
        }
        let parsed = crate::json::parse(&s.to_json().to_string()).unwrap();
        let back = HistogramSnapshot::from_json(&parsed).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn registry_snapshot_to_json_lists_names() {
        let reg = Registry::new();
        reg.counter("a.b").incr();
        reg.histogram("h").record(9);
        let text = reg.snapshot().to_json().to_string();
        assert!(text.contains("\"a.b\":1"));
        assert!(text.contains("\"h\":{"));
    }
}

//! Causal span identity and trace capture: every armed [`crate::Span`]
//! gets a process-unique id and a parent (the span current on its
//! thread when it opened), and the parent context can be carried
//! across threads — `parallel_map` and `WorkerPool` adopt the
//! submitting span before running an item, so a captured trace
//! reconstructs the *logical* task tree, not the accidental thread
//! layout.
//!
//! # Capture and export
//!
//! [`start_capture`] arms an in-memory collector; every span closed
//! while capturing appends a [`SpanRecord`]; [`take_capture`] drains
//! them into a [`Trace`], which exports three ways:
//!
//! * [`Trace::to_chrome_json`] — Chrome trace-event JSON (`ph: "X"`
//!   complete events), loadable in Perfetto / `chrome://tracing`;
//! * [`Trace::to_collapsed`] — collapsed-stack lines
//!   (`root;child;leaf <self µs>`), the folded format flamegraph
//!   tooling consumes — dependency-free on both ends;
//! * [`phase_table`] — an ASCII per-engine phase attribution table
//!   (act vs exchange vs arbitration) computed from the metrics
//!   registry's `kernel.*.ns` histograms rather than from spans, so it
//!   works at any verbosity that enables metrics.
//!
//! ```
//! use a2a_obs::{trace, Span};
//!
//! trace::start_capture();
//! {
//!     let _outer = Span::enter("demo.outer");
//!     let _inner = Span::enter("demo.inner");
//! }
//! let t = trace::take_capture();
//! assert_eq!(t.spans.len(), 2);
//! let inner = t.spans.iter().find(|s| s.name == "demo.inner").unwrap();
//! let outer = t.spans.iter().find(|s| s.name == "demo.outer").unwrap();
//! assert_eq!(inner.parent, outer.id);
//! ```

use crate::json::Json;
use crate::registry::RegistrySnapshot;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Span id allocator; 0 is reserved for "no span".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Whether closed spans are being collected.
static CAPTURING: AtomicBool = AtomicBool::new(false);

/// The collector ([`start_capture`] / [`take_capture`]).
static CAPTURED: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    /// The innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// An opaque span context: the identity of the span current on some
/// thread, capturable with [`current`] and re-established on another
/// thread with [`adopt`]. Cheap to copy and send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanCtx(u64);

impl SpanCtx {
    /// The empty context (no parent).
    #[must_use]
    pub fn none() -> Self {
        Self(0)
    }

    /// The raw span id (0 = none) — exposed for tests and exporters.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The calling thread's innermost open span, for handing to another
/// thread via [`adopt`].
#[must_use]
pub fn current() -> SpanCtx {
    SpanCtx(CURRENT.get())
}

/// Makes `ctx` the calling thread's current span until the returned
/// guard drops (restoring whatever was current before). Worker threads
/// call this with the submitter's [`current`] before running an item,
/// which is what threads the logical task tree across the pool.
#[must_use]
pub fn adopt(ctx: SpanCtx) -> Adopted {
    Adopted { prev: CURRENT.replace(ctx.0) }
}

/// Guard returned by [`adopt`]; restores the previous context on drop
/// (including during unwinding, so a panicking item cannot leak its
/// context into the worker's next job).
#[derive(Debug)]
pub struct Adopted {
    prev: u64,
}

impl Drop for Adopted {
    fn drop(&mut self) {
        CURRENT.set(self.prev);
    }
}

/// Allocates a span id and pushes it as the thread's current span.
/// Returns `(id, parent)`.
pub(crate) fn begin() -> (u64, u64) {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.replace(id);
    (id, parent)
}

/// Closes span `id`: pops it (restoring `parent` as current, when the
/// nesting was LIFO) and appends to the capture when armed.
pub(crate) fn finish(record: SpanRecord) {
    if CURRENT.get() == record.id {
        CURRENT.set(record.parent);
    }
    if capturing() {
        CAPTURED.lock().expect("trace capture lock").push(record);
    }
}

/// Whether closed spans are currently being captured.
#[inline]
#[must_use]
pub fn capturing() -> bool {
    CAPTURING.load(Ordering::Relaxed)
}

/// Starts (or restarts) capturing closed spans, clearing any previous
/// capture. Capturing also arms [`crate::Span::enter`], so no other
/// verbosity needs to be raised.
pub fn start_capture() {
    CAPTURED.lock().expect("trace capture lock").clear();
    CAPTURING.store(true, Ordering::Relaxed);
}

/// Stops capturing and returns everything captured since
/// [`start_capture`].
#[must_use]
pub fn take_capture() -> Trace {
    CAPTURING.store(false, Ordering::Relaxed);
    let mut spans = std::mem::take(&mut *CAPTURED.lock().expect("trace capture lock"));
    spans.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms).then(a.id.cmp(&b.id)));
    Trace { spans }
}

/// One closed span, as captured.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the span current when this one opened (0 = root).
    pub parent: u64,
    /// Span name (dot-separated, like events).
    pub name: &'static str,
    /// Open timestamp, milliseconds since the process clock origin.
    pub start_ms: f64,
    /// Wall-clock duration in microseconds.
    pub elapsed_us: u64,
    /// Ordinal of the thread the span ran on.
    pub thread: u64,
    /// Worker tag of that thread, if any.
    pub worker: Option<usize>,
}

/// A set of captured spans plus the exporters over them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Captured spans, ordered by open time.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Ids of spans whose parent was not captured (or is 0) — the tree
    /// roots.
    #[must_use]
    pub fn roots(&self) -> Vec<u64> {
        let ids: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.id).collect();
        self.spans
            .iter()
            .filter(|s| s.parent == 0 || !ids.contains(&s.parent))
            .map(|s| s.id)
            .collect()
    }

    /// Child ids per parent id, in open order.
    #[must_use]
    pub fn children(&self) -> BTreeMap<u64, Vec<u64>> {
        let mut map: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for s in &self.spans {
            if s.parent != 0 {
                map.entry(s.parent).or_default().push(s.id);
            }
        }
        map
    }

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` envelope,
    /// `ph: "X"` complete events, timestamps in microseconds) —
    /// loadable in Perfetto or `chrome://tracing`.
    #[must_use]
    pub fn to_chrome_json(&self) -> Json {
        let events: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                let mut args = Json::object().with("id", s.id).with("parent", s.parent);
                if let Some(w) = s.worker {
                    args.set("worker", w);
                }
                Json::object()
                    .with("name", s.name)
                    .with("cat", "span")
                    .with("ph", "X")
                    .with("ts", (s.start_ms * 1000.0).round())
                    .with("dur", s.elapsed_us)
                    .with("pid", 1u64)
                    .with("tid", s.thread)
                    .with("args", args)
            })
            .collect();
        Json::object()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ms")
    }

    /// Collapsed-stack lines (`a;b;c <self µs>`, one per distinct
    /// stack, sorted): the folded flamegraph format. Self time is a
    /// span's duration minus its direct children's, clamped at 0 (a
    /// child running on another thread can outlive the overlap).
    #[must_use]
    pub fn to_collapsed(&self) -> String {
        let by_id: BTreeMap<u64, &SpanRecord> =
            self.spans.iter().map(|s| (s.id, s)).collect();
        let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &self.spans {
            if s.parent != 0 && by_id.contains_key(&s.parent) {
                *child_us.entry(s.parent).or_default() += s.elapsed_us;
            }
        }
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            let mut path = vec![s.name];
            let mut at = s.parent;
            // Bounded walk: ids strictly decrease toward the root, so a
            // (corrupt) cycle cannot hang the exporter.
            while let Some(p) = by_id.get(&at) {
                path.push(p.name);
                if p.parent >= p.id {
                    break;
                }
                at = p.parent;
            }
            path.reverse();
            let self_us =
                s.elapsed_us.saturating_sub(child_us.get(&s.id).copied().unwrap_or(0));
            *stacks.entry(path.join(";")).or_default() += self_us;
        }
        let mut out = String::new();
        for (stack, us) in stacks {
            out.push_str(&format!("{stack} {us}\n"));
        }
        out
    }
}

/// The per-engine phase attribution table: act vs exchange vs
/// arbitration wall time per kernel engine, computed from the
/// `kernel*.{act,exchange,arbitrate}.ns` histograms of a registry
/// snapshot (recorded by the traced run paths at `A2A_LOG=trace`).
/// Arbitration is a sub-phase *inside* act on the engines that time it.
#[must_use]
pub fn phase_table(snap: &RegistrySnapshot) -> String {
    let ns_sum = |name: &str| snap.histograms.get(name).map_or(0u64, |h| h.sum);
    let engines = [
        ("fast", "kernel.act.ns", "kernel.exchange.ns", "kernel.arbitrate.ns"),
        ("multi", "kernel.multi.act.ns", "kernel.multi.exchange.ns", ""),
        ("sliced", "kernel.sliced.act.ns", "kernel.sliced.exchange.ns", ""),
    ];
    let mut rows = Vec::new();
    for (engine, act, exchange, arb) in engines {
        let (a, e) = (ns_sum(act), ns_sum(exchange));
        let r = if arb.is_empty() { 0 } else { ns_sum(arb) };
        if a + e + r > 0 {
            rows.push((engine, a, e, r));
        }
    }
    if rows.is_empty() {
        return "(no per-phase kernel timing recorded — run with A2A_LOG=trace)".to_string();
    }
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut out = String::from(
        "engine  |     act ms | exchange ms | arb ms (in act) |  act% | exch%\n\
         --------+------------+-------------+-----------------+-------+------\n",
    );
    for (engine, a, e, r) in rows {
        let total = (a + e).max(1) as f64;
        out.push_str(&format!(
            "{engine:<7} | {:>10.3} | {:>11.3} | {:>15.3} | {:>4.0}% | {:>4.0}%\n",
            ms(a),
            ms(e),
            ms(r),
            100.0 * a as f64 / total,
            100.0 * e as f64 / total,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, name: &'static str, start_ms: f64, us: u64) -> SpanRecord {
        SpanRecord { id, parent, name, start_ms, elapsed_us: us, thread: 0, worker: None }
    }

    #[test]
    fn adopt_restores_on_drop() {
        assert_eq!(current().raw(), 0);
        {
            let _g = adopt(SpanCtx(42));
            assert_eq!(current().raw(), 42);
            {
                let _h = adopt(SpanCtx::none());
                assert_eq!(current().raw(), 0);
            }
            assert_eq!(current().raw(), 42);
        }
        assert_eq!(current().raw(), 0);
    }

    #[test]
    fn chrome_export_shape() {
        let t = Trace { spans: vec![rec(1, 0, "root", 0.5, 100), rec(2, 1, "leaf", 0.6, 40)] };
        let doc = t.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[1].get("args").unwrap().get("parent").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn collapsed_self_time_subtracts_children() {
        let t = Trace {
            spans: vec![
                rec(1, 0, "root", 0.0, 100),
                rec(2, 1, "a", 0.1, 30),
                rec(3, 1, "b", 0.2, 50),
            ],
        };
        let folded = t.to_collapsed();
        assert!(folded.contains("root 20\n"), "{folded}");
        assert!(folded.contains("root;a 30\n"), "{folded}");
        assert!(folded.contains("root;b 50\n"), "{folded}");
    }

    #[test]
    fn roots_and_children_reconstruct_the_tree() {
        let t = Trace {
            spans: vec![rec(5, 99, "orphan", 0.0, 1), rec(6, 0, "root", 0.0, 2), rec(7, 6, "kid", 0.1, 1)],
        };
        assert_eq!(t.roots(), vec![5, 6]);
        assert_eq!(t.children().get(&6), Some(&vec![7]));
    }

    #[test]
    fn phase_table_reports_missing_timing() {
        let snap = RegistrySnapshot::default();
        assert!(phase_table(&snap).contains("A2A_LOG=trace"));
    }
}

//! Pluggable event sinks: human-readable stderr and JSONL files.

use crate::event::Event;
use crate::json::Json;
use crate::Level;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// An event backend. Implementations must be cheap per record and
/// internally synchronised — `record` is called from arbitrary threads.
pub trait Sink: Send + Sync + fmt::Debug {
    /// Handles one event (already filtered by level).
    fn record(&self, event: &Event);
    /// The chattiest level this sink wants.
    fn verbosity(&self) -> Level;
    /// Forces buffered output out (end of run).
    fn flush(&self) {}
    /// Marks the run complete: flush plus any publish step (e.g. a
    /// [`JsonlSink`] renames its `.partial` file into place). Called by
    /// [`finalize_all`] at clean shutdown; a crashed process never gets
    /// here, which is exactly what distinguishes its artifacts.
    fn finalize(&self) {
        self.flush();
    }
}

/// Writes `bytes` to `path` atomically: a `.tmp` sibling is written and
/// fsynced, then renamed over `path`, and the containing directory is
/// fsynced so the rename itself is durable. Readers therefore see
/// either the previous complete file or the new complete file, never a
/// truncated mix — the invariant every `BENCH_*.json` artifact and
/// checkpoint write in this workspace relies on.
///
/// # Errors
///
/// Propagates IO errors from any step; on error the target file is
/// untouched (a stale `.tmp` sibling may remain).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let tmp = unique_sibling(path, ".tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes `bytes` to the `.partial` sibling of `path` (fsynced), then
/// renames it into place — the publication discipline [`JsonlSink`]
/// uses for event streams, shared here so flight-recorder dumps get
/// the same guarantee: the final path only ever holds a complete
/// document, and a crash mid-write leaves a diagnosable `.partial`.
///
/// # Errors
///
/// Propagates IO errors from any step; on error the target path is
/// untouched (a `.partial` sibling may remain — deliberately, as the
/// crash artifact).
pub fn publish_via_partial(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let partial = unique_sibling(path, ".partial");
    {
        let mut file = File::create(&partial)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&partial, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// `path` with `suffix` appended to the full file name (keeping any
/// existing extension: `events.jsonl` → `events.jsonl.partial`).
fn sibling_with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

/// Monotonic per-process counter distinguishing concurrent temp files.
static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A process- and call-unique temp sibling of `path`:
/// `events.jsonl` → `events.jsonl.partial.<pid>-<seq>`. Two sinks (or
/// two processes sharing a directory) targeting the same published path
/// therefore never write through the same temp file — each publishes by
/// renaming its own temp, and last rename wins with a complete file.
fn unique_sibling(path: &Path, tag: &str) -> PathBuf {
    let seq = TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    sibling_with_suffix(path, &format!("{tag}.{}-{seq}", std::process::id()))
}

static SINKS: OnceLock<RwLock<Vec<Arc<dyn Sink>>>> = OnceLock::new();

fn sinks() -> &'static RwLock<Vec<Arc<dyn Sink>>> {
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Attaches a sink for the rest of the process lifetime and raises the
/// dispatch ceiling to its verbosity (also enabling metrics when the
/// sink wants info or chattier).
pub fn attach_sink(sink: Arc<dyn Sink>) {
    crate::raise_level(sink.verbosity());
    sinks().write().expect("sink lock never poisoned").push(sink);
}

/// Number of currently attached sinks.
#[must_use]
pub fn attached_sinks() -> usize {
    sinks().read().expect("sink lock never poisoned").len()
}

/// Finalizes every attached sink (flush + publish). Binaries call this
/// once at clean exit — attached sinks live for the process lifetime,
/// so their `Drop` never runs.
pub fn finalize_all() {
    for_each_sink(|sink| sink.finalize());
}

/// Runs `f` over every attached sink.
pub(crate) fn for_each_sink(mut f: impl FnMut(&dyn Sink)) {
    for sink in sinks().read().expect("sink lock never poisoned").iter() {
        f(sink.as_ref());
    }
}

/// Human-readable sink: one line per event on stderr, written with a
/// single locked `write_all` so concurrent workers never interleave
/// partial lines (the fix for the garbled `println!` progress output).
#[derive(Debug)]
pub struct StderrSink {
    verbosity: Level,
}

impl StderrSink {
    /// A stderr sink admitting events up to `verbosity`.
    #[must_use]
    pub fn new(verbosity: Level) -> Self {
        Self { verbosity }
    }
}

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        let line = format!("{event}\n");
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(line.as_bytes());
    }

    fn verbosity(&self) -> Level {
        self.verbosity
    }

    fn flush(&self) {
        let _ = std::io::stderr().flush();
    }
}

/// JSONL sink: one [`Event::to_json`] object per line, buffered. The
/// schema is documented in [`crate::schema`] and validated by
/// `schema::validate_event_line`. Extra non-event lines (registry
/// snapshots) can be appended with [`JsonlSink::write_json`].
///
/// # Crash safety
///
/// The stream is written to a process- and sink-unique `.partial.*`
/// sibling of the requested path and renamed into place by
/// [`JsonlSink::finalize`] (or `Drop`). A finished file at the
/// requested path is therefore always one a clean shutdown produced; a
/// `.partial.*` left behind marks a crashed run — still readable line
/// by line, with at most the final line truncated (which `obs_validate`
/// tolerates and reports). The rename keeps the open descriptor valid,
/// so events recorded after finalization still land in the published
/// file. Because each sink owns its own temp name, two sinks in one
/// process (or two processes sharing a directory) targeting the same
/// published path cannot corrupt each other's stream: each publishes a
/// complete file and the last rename wins.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    verbosity: Level,
    /// Requested (published) path; the stream starts at `partial`.
    path: PathBuf,
    /// This sink's own unique temp path (see [`unique_sibling`]).
    partial: PathBuf,
    finalized: AtomicBool,
}

impl JsonlSink {
    /// Opens a unique `.partial.*` sibling of `path` and admits events
    /// up to `verbosity`; `path` itself appears at finalization.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>, verbosity: Level) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let partial = unique_sibling(&path, ".partial");
        let file = File::create(&partial)?;
        Ok(Self {
            out: Mutex::new(BufWriter::new(file)),
            verbosity,
            path,
            partial,
            finalized: AtomicBool::new(false),
        })
    }

    /// The published path (where the stream lands after finalization).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The in-progress temp path this sink writes through until
    /// finalization (useful for diagnosing crashed runs).
    #[must_use]
    pub fn partial_path(&self) -> &Path {
        &self.partial
    }

    /// Appends an arbitrary JSON document as one line (registry
    /// snapshots, bench summaries).
    pub fn write_json(&self, doc: &Json) {
        let mut out = self.out.lock().expect("jsonl lock never poisoned");
        let _ = writeln!(out, "{doc}");
    }

    /// Flush + fsync + rename this sink's own temp file into the
    /// requested path. Idempotent; errors are swallowed (observability
    /// must never take the run down), leaving the temp behind as the
    /// artifact.
    fn publish(&self) {
        let mut out = self.out.lock().expect("jsonl lock never poisoned");
        let _ = out.flush();
        if self.finalized.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = out.get_ref().sync_all();
        let _ = std::fs::rename(&self.partial, &self.path);
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        self.write_json(&event.to_json());
    }

    fn verbosity(&self) -> Level {
        self.verbosity
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl lock never poisoned").flush();
    }

    fn finalize(&self) {
        self.publish();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.publish();
    }
}

/// A sink that counts records and keeps the last few events in memory —
/// for tests and the overhead bench (measures dispatch cost without
/// I/O).
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty memory sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far (cloned).
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.records.lock().expect("memory sink lock never poisoned").clone()
    }

    /// Number of records seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.lock().expect("memory sink lock never poisoned").len()
    }

    /// Whether nothing was recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.records.lock().expect("memory sink lock never poisoned").push(event.clone());
    }

    fn verbosity(&self) -> Level {
        Level::Trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("a2a_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let sink = JsonlSink::create(&path, Level::Debug).unwrap();
            sink.record(&Event::new(Level::Info, "t.one").field("v", 1u64));
            sink.write_json(&Json::object().with("snapshot", true));
            sink.flush();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_publishes_on_finalize_and_keeps_writing() {
        let dir = std::env::temp_dir().join("a2a_obs_sink_finalize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = JsonlSink::create(&path, Level::Debug).unwrap();
        let partial = sink.partial_path().to_path_buf();
        assert_ne!(partial, path);
        assert!(
            partial.file_name().unwrap().to_string_lossy().contains(".partial."),
            "temp name carries a unique .partial.<pid>-<seq> tag"
        );
        sink.record(&Event::new(Level::Info, "t.before"));
        sink.flush();
        assert!(partial.exists(), "stream starts at the sink's own temp");
        assert!(!path.exists(), "published path only appears at finalize");
        sink.finalize();
        assert!(path.exists() && !partial.exists(), "finalize renames into place");
        // The open descriptor survives the rename: later records land in
        // the published file.
        sink.record(&Event::new(Level::Info, "t.after"));
        sink.finalize(); // idempotent; flushes the late record
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn two_sinks_on_one_path_never_share_a_partial() {
        // Regression: both sinks used to open the same `.partial`
        // sibling, so the second create truncated the first sink's
        // stream and the first finalize renamed a half-written mix.
        let dir = std::env::temp_dir().join("a2a_obs_sink_race_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let a = JsonlSink::create(&path, Level::Debug).unwrap();
        let b = JsonlSink::create(&path, Level::Debug).unwrap();
        assert_ne!(a.partial_path(), b.partial_path(), "each sink owns its temp");
        for i in 0..50u64 {
            a.record(&Event::new(Level::Info, "race.a").field("i", i));
            b.record(&Event::new(Level::Info, "race.b").field("i", i));
        }
        a.finalize();
        b.finalize();
        // Last finalize wins with a COMPLETE single-sink stream: every
        // line parses and all 50 records come from exactly one sink.
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 50);
        let names: std::collections::BTreeSet<String> = lines
            .iter()
            .map(|l| {
                let doc = crate::json::parse(l).unwrap();
                doc.get("event").and_then(Json::as_str).unwrap().to_string()
            })
            .collect();
        assert_eq!(names.len(), 1, "published stream is one sink's, not interleaved");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = std::env::temp_dir().join("a2a_obs_atomic_write_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        atomic_write(&path, b"{\"v\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 1}\n");
        atomic_write(&path, b"{\"v\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 2}\n");
        let stale = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(stale, 0, "no stale temp on success");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_sink_collects() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&Event::new(Level::Debug, "m.e"));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].name, "m.e");
    }
}

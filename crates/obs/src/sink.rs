//! Pluggable event sinks: human-readable stderr and JSONL files.

use crate::event::Event;
use crate::json::Json;
use crate::Level;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// An event backend. Implementations must be cheap per record and
/// internally synchronised — `record` is called from arbitrary threads.
pub trait Sink: Send + Sync + fmt::Debug {
    /// Handles one event (already filtered by level).
    fn record(&self, event: &Event);
    /// The chattiest level this sink wants.
    fn verbosity(&self) -> Level;
    /// Forces buffered output out (end of run).
    fn flush(&self) {}
}

static SINKS: OnceLock<RwLock<Vec<Arc<dyn Sink>>>> = OnceLock::new();

fn sinks() -> &'static RwLock<Vec<Arc<dyn Sink>>> {
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Attaches a sink for the rest of the process lifetime and raises the
/// dispatch ceiling to its verbosity (also enabling metrics when the
/// sink wants info or chattier).
pub fn attach_sink(sink: Arc<dyn Sink>) {
    crate::raise_level(sink.verbosity());
    sinks().write().expect("sink lock never poisoned").push(sink);
}

/// Number of currently attached sinks.
#[must_use]
pub fn attached_sinks() -> usize {
    sinks().read().expect("sink lock never poisoned").len()
}

/// Runs `f` over every attached sink.
pub(crate) fn for_each_sink(mut f: impl FnMut(&dyn Sink)) {
    for sink in sinks().read().expect("sink lock never poisoned").iter() {
        f(sink.as_ref());
    }
}

/// Human-readable sink: one line per event on stderr, written with a
/// single locked `write_all` so concurrent workers never interleave
/// partial lines (the fix for the garbled `println!` progress output).
#[derive(Debug)]
pub struct StderrSink {
    verbosity: Level,
}

impl StderrSink {
    /// A stderr sink admitting events up to `verbosity`.
    #[must_use]
    pub fn new(verbosity: Level) -> Self {
        Self { verbosity }
    }
}

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        let line = format!("{event}\n");
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(line.as_bytes());
    }

    fn verbosity(&self) -> Level {
        self.verbosity
    }

    fn flush(&self) {
        let _ = std::io::stderr().flush();
    }
}

/// JSONL sink: one [`Event::to_json`] object per line, buffered. The
/// schema is documented in [`crate::schema`] and validated by
/// `schema::validate_event_line`. Extra non-event lines (registry
/// snapshots) can be appended with [`JsonlSink::write_json`].
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    verbosity: Level,
}

impl JsonlSink {
    /// Creates (truncates) `path` and admits events up to `verbosity`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>, verbosity: Level) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)), verbosity })
    }

    /// Appends an arbitrary JSON document as one line (registry
    /// snapshots, bench summaries).
    pub fn write_json(&self, doc: &Json) {
        let mut out = self.out.lock().expect("jsonl lock never poisoned");
        let _ = writeln!(out, "{doc}");
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        self.write_json(&event.to_json());
    }

    fn verbosity(&self) -> Level {
        self.verbosity
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl lock never poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// A sink that counts records and keeps the last few events in memory —
/// for tests and the overhead bench (measures dispatch cost without
/// I/O).
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty memory sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far (cloned).
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.records.lock().expect("memory sink lock never poisoned").clone()
    }

    /// Number of records seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.lock().expect("memory sink lock never poisoned").len()
    }

    /// Whether nothing was recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.records.lock().expect("memory sink lock never poisoned").push(event.clone());
    }

    fn verbosity(&self) -> Level {
        Level::Trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("a2a_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let sink = JsonlSink::create(&path, Level::Debug).unwrap();
            sink.record(&Event::new(Level::Info, "t.one").field("v", 1u64));
            sink.write_json(&Json::object().with("snapshot", true));
            sink.flush();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_sink_collects() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&Event::new(Level::Debug, "m.e"));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].name, "m.e");
    }
}

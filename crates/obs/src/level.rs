//! Verbosity levels and the `A2A_LOG` grammar.

use std::fmt;

/// Event severity / verbosity, ordered from silent to chattiest.
///
/// The numeric repr is the dispatch ceiling: an event passes when its
/// level is `<=` the ceiling, so `Error` events survive any non-`Off`
/// setting while `Trace` needs the full firehose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Nothing is dispatched.
    Off = 0,
    /// Unrecoverable or wrong: the run's results are suspect.
    Error = 1,
    /// Surprising but survivable (e.g. a run hit the horizon).
    Warn = 2,
    /// Per-run / per-generation progress — the default sink verbosity.
    Info = 3,
    /// Per-run internals: conflict counts, informed-count curve points.
    Debug = 4,
    /// Per-step internals: phase timings. Expect firehose volume.
    Trace = 5,
}

impl Level {
    /// Inverse of `self as u8`, clamping unknown values to [`Level::Trace`].
    #[must_use]
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Off,
            1 => Self::Error,
            2 => Self::Warn,
            3 => Self::Info,
            4 => Self::Debug,
            _ => Self::Trace,
        }
    }

    /// Parses a level name (case-insensitive); `None` for unknown names.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Self::Off),
            "error" => Some(Self::Error),
            "warn" | "warning" => Some(Self::Warn),
            "info" => Some(Self::Info),
            "debug" => Some(Self::Debug),
            "trace" | "all" => Some(Self::Trace),
            _ => None,
        }
    }

    /// The lowercase name used in JSONL records.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Error => "error",
            Self::Warn => "warn",
            Self::Info => "info",
            Self::Debug => "debug",
            Self::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses an `A2A_LOG` spec: comma-separated `level` or `prefix=level`
/// items. Returns the default level (last bare level wins, `Off` if
/// none) and the prefix overrides in order. Unknown level names are
/// skipped.
pub(crate) fn parse_spec(spec: &str) -> (Level, Vec<(String, Level)>) {
    let mut default = Level::Off;
    let mut filters = Vec::new();
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        match item.split_once('=') {
            Some((prefix, level)) => {
                if let Some(l) = Level::parse(level) {
                    filters.push((prefix.trim().to_string(), l));
                }
            }
            None => {
                if let Some(l) = Level::parse(item) {
                    default = l;
                }
            }
        }
    }
    if !filters.is_empty() {
        // The bare default participates in prefix matching as the
        // empty-prefix (matches-everything) entry.
        filters.insert(0, (String::new(), default));
    }
    (default, filters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_verbosity() {
        assert!(Level::Error < Level::Info);
        assert!(Level::Trace > Level::Debug);
        assert_eq!(Level::from_u8(Level::Debug as u8), Level::Debug);
    }

    #[test]
    fn parse_accepts_names_and_rejects_noise() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn spec_grammar() {
        let (d, f) = parse_spec("info");
        assert_eq!(d, Level::Info);
        assert!(f.is_empty());

        let (d, f) = parse_spec("warn,ga=debug, kernel=trace,bogus=xyz");
        assert_eq!(d, Level::Warn);
        assert_eq!(
            f,
            vec![
                (String::new(), Level::Warn),
                ("ga".to_string(), Level::Debug),
                ("kernel".to_string(), Level::Trace),
            ]
        );

        let (d, f) = parse_spec("");
        assert_eq!(d, Level::Off);
        assert!(f.is_empty());
    }
}

//! The JSONL and `BENCH_obs.json` schemas, with validators.
//!
//! # Event-line schema (`a2a-obs/events/v1`)
//!
//! Every line a [`crate::JsonlSink`] writes is one JSON object. Event
//! lines carry:
//!
//! | member   | type    | notes                                          |
//! |----------|---------|------------------------------------------------|
//! | `t_ms`   | number  | ms since the process's first observability call |
//! | `level`  | string  | `error`/`warn`/`info`/`debug`/`trace`          |
//! | `event`  | string  | dot-separated name, e.g. `kernel.run`          |
//! | `worker` | number  | optional; pool-thread id                       |
//! | `fields` | object  | string → number \| string \| bool              |
//!
//! Lines without a `level` member are auxiliary documents (registry
//! snapshots, bench summaries) and are validated only as JSON.
//!
//! # Bench-snapshot schema (`a2a-obs/bench-snapshot/v1`)
//!
//! The consolidated perf snapshot `all_experiments` writes to
//! `BENCH_obs.json`:
//!
//! ```json
//! {
//!   "schema": "a2a-obs/bench-snapshot/v1",
//!   "kernel": {"grid": "T", "steps_per_sec": 1.2e8, ...},
//!   "fitness": {"evals_per_sec": 1234.5, ...},
//!   "t_comm": [{"grid": "T", "k": 16, "histogram": {...}}, ...],
//!   "ga": {"series": [{"generation": 0, "best": 1e4, "median": 2e4}, ...]},
//!   "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
//! }
//! ```
//!
//! `t_comm` must cover `k ∈ {4, 16, 64}` and `ga.series` must be
//! non-empty — the acceptance gate of the observability PR.
//!
//! # Fitness-bench schema (`a2a-obs/fitness-bench/v1`)
//!
//! The before/after throughput snapshot the adaptive fitness pipeline
//! writes to `BENCH_fitness.json` (see DESIGN.md §8):
//!
//! ```json
//! {
//!   "schema": "a2a-obs/fitness-bench/v1",
//!   "workload": {"population": 20, "children": 10, "configs": 100, "k": 16, "grid": "T"},
//!   "baseline": {"elapsed_us": 1.0e6, "epochs": 2},
//!   "adaptive": {"elapsed_us": 4.0e5, "cold_us": 3.9e5, "warm_us": 1.0e4,
//!                "cache_hits": 20, "cache_misses": 20},
//!   "selection": {"elapsed_us": 1.0e5, "pruned_genomes": 6, "pruned_configs": 540, "exact": 4},
//!   "speedup": 2.5,
//!   "identical_reports": true
//! }
//! ```
//!
//! `identical_reports` asserts the adaptive path reproduced the
//! baseline's `FitnessReport`s bit-for-bit; `speedup` must be ≥ 1 (the
//! adaptive path must never be slower), which CI gates on via
//! `obs_validate --fitness`.
//!
//! # Kernel-bench schema (`a2a-obs/kernel-bench/v3`)
//!
//! The five-path kernel throughput snapshot written to
//! `BENCH_kernel.json` (see [`validate_kernel_snapshot`] for the
//! shape): the single-run path, the `dense` full-scan multi path (the
//! pre-frontier engine, replayed in-process as the honest same-machine
//! baseline), the frontier `multi` path `run_all` ships, the `parallel`
//! path (the same multi kernel sharded across a [`crate`]-external
//! dispatcher), and the bit-sliced `sliced` path — all over one
//! whole-population workload. `identical_outcomes` asserts every path
//! reproduced the single-run outcomes bit-for-bit (the harness itself
//! cross-checks against the reference `World`, making the guarantee
//! span all engines). `speedup` (multi vs. single) and
//! `frontier_speedup` (dense vs. frontier multi — the sparse kernel's
//! own win) gate ≥ 1. `parallel_speedup` (dense vs. parallel) is
//! recorded always and gated ≥ 3 only when `parallel.workers` ≥ 4 — a
//! single-core runner cannot honestly bind a multi-core target, so the
//! gate arms exactly where the hardware can meet it.
//! `sliced_speedup` (sliced vs. multi) is *recorded, not gated ≥ 1*:
//! the run-transposed engine measures slower than the run-major one on
//! these workloads (divergent runs defeat word-parallel merging — see
//! DESIGN.md §11), and the honest series is pinned against rot by the
//! baseline regression gate instead. The `frontier` section carries the
//! measured per-step active-fraction histogram
//! (`kernel.frontier.active_pct`, captured on an untimed instrumented
//! pass) — the empirical shape that justifies sparse stepping. CI gates
//! the ratios against a checked-in baseline via
//! [`validate_kernel_regression`] (`obs_validate --kernel` /
//! `--kernel-baseline`).
//!
//! # Checksums
//!
//! Both snapshot payloads carry a `checksum` member: the FNV-1a 64-bit
//! hash (as 16 lowercase hex digits) of the document serialized
//! *without* its `checksum` member. Producers add it with [`seal`];
//! validators recompute and compare, so a torn or hand-edited artifact
//! fails `obs_validate` loudly instead of feeding corrupt numbers into
//! a report. The same hash seals `a2a-run/checkpoint/v1` documents.

use crate::json::{parse, Json};
use crate::registry::HistogramSnapshot;
use crate::Level;

/// Schema identifier written into `BENCH_obs.json`.
pub const BENCH_SNAPSHOT_SCHEMA: &str = "a2a-obs/bench-snapshot/v1";

/// Schema identifier written into `BENCH_fitness.json`.
pub const FITNESS_BENCH_SCHEMA: &str = "a2a-obs/fitness-bench/v1";

/// Schema identifier written into `BENCH_kernel.json`.
pub const KERNEL_BENCH_SCHEMA: &str = "a2a-obs/kernel-bench/v3";

/// Schema identifier written into `BENCH_serve.json` (the `a2a-serve`
/// load-test snapshot sealed by `serve_bench`, gated by
/// `obs_validate --serve`).
pub const SERVE_BENCH_SCHEMA: &str = "a2a-obs/serve-bench/v1";

/// The minimum worker count at which [`validate_kernel_snapshot`]
/// arms the ≥ [`PARALLEL_SPEEDUP_GATE`] gate on `parallel_speedup`.
/// Below it (CI single-core runners included) the ratio is recorded
/// but not floored — one core cannot honestly bind a multi-core
/// target.
pub const PARALLEL_GATE_MIN_WORKERS: f64 = 4.0;

/// The `parallel_speedup` floor enforced once the dispatcher has at
/// least [`PARALLEL_GATE_MIN_WORKERS`] workers.
pub const PARALLEL_SPEEDUP_GATE: f64 = 3.0;

/// Schema identifier written into `BENCH_campaign.json` (the sharded
/// MAP-Elites campaign snapshot sealed by `campaign_run --bench`,
/// gated by `obs_validate --campaign`).
pub const CAMPAIGN_BENCH_SCHEMA: &str = "a2a-obs/campaign-bench/v1";

/// The `scaling.ratio` floor (multi-shard aggregate throughput over
/// the 1-shard run on the same budget) enforced by
/// [`validate_campaign_snapshot`] once the host has at least
/// [`PARALLEL_GATE_MIN_WORKERS`] cores. Below that the ratio is
/// recorded but not floored — the same honest-hardware convention as
/// the kernel dispatcher gate.
pub const CAMPAIGN_SHARD_SPEEDUP_GATE: f64 = 2.0;

/// Schema identifier of a flight-recorder dump's sealed header line
/// (see [`crate::flight`] for the stream layout).
pub const FLIGHT_SCHEMA: &str = "a2a-obs/flight/v1";

/// Schema identifier of one sealed `results/bench_history.jsonl` line
/// (appended by `all_experiments`, consumed by `obs_report`).
pub const BENCH_HISTORY_SCHEMA: &str = "a2a-obs/bench-history/v1";

/// The largest fraction of a baseline's kernel speedup a fresh snapshot
/// may lose before [`validate_kernel_regression`] rejects it (the CI
/// perf-smoke gate: > 30 % regression fails).
pub const KERNEL_REGRESSION_FLOOR: f64 = 0.7;

/// The agent counts every bench snapshot must histogram `t_comm` for.
pub const REQUIRED_T_COMM_KS: [u64; 3] = [4, 16, 64];

/// FNV-1a 64-bit hash — the workspace's checksum primitive (no crypto
/// needed: the adversary is a torn write, not an attacker).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

/// The checksum of `doc`: FNV-1a 64 over the document serialized with
/// its top-level `checksum` member (if any) removed, as 16 lowercase
/// hex digits.
#[must_use]
pub fn document_checksum(doc: &Json) -> String {
    let body = match doc.as_obj() {
        Some(entries) => Json::Obj(
            entries.iter().filter(|(k, _)| k != "checksum").cloned().collect(),
        ),
        None => doc.clone(),
    };
    format!("{:016x}", fnv1a64(body.to_string().as_bytes()))
}

/// Adds (or replaces) the `checksum` member of `doc` so that
/// [`verify_checksum`] accepts it.
#[must_use]
pub fn seal(doc: Json) -> Json {
    let sum = document_checksum(&doc);
    doc.with("checksum", sum)
}

/// Verifies the `checksum` member of `doc` against the recomputed
/// value.
///
/// # Errors
///
/// A message naming the problem: missing/non-string member, or a
/// mismatch (both digests included).
pub fn verify_checksum(doc: &Json) -> Result<(), String> {
    let claimed = doc
        .get("checksum")
        .ok_or("missing `checksum`")?
        .as_str()
        .ok_or("`checksum` must be a string")?;
    let actual = document_checksum(doc);
    if claimed == actual {
        Ok(())
    } else {
        Err(format!("checksum mismatch: document says {claimed}, content hashes to {actual}"))
    }
}

/// Validates one JSONL line: any valid JSON object is accepted, and
/// objects carrying a `level` member must satisfy the event schema.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_event_line(line: &str) -> Result<(), String> {
    let doc = parse(line)?;
    if doc.as_obj().is_none() {
        return Err("line is not a JSON object".to_string());
    }
    let Some(level) = doc.get("level") else {
        return Ok(()); // auxiliary document (snapshot, summary)
    };
    let level = level.as_str().ok_or("`level` must be a string")?;
    if Level::parse(level).is_none_or(|l| l == Level::Off) {
        return Err(format!("unknown level `{level}`"));
    }
    doc.get("t_ms").and_then(Json::as_f64).ok_or("event missing numeric `t_ms`")?;
    let name = doc.get("event").and_then(Json::as_str).ok_or("event missing string `event`")?;
    if name.is_empty() {
        return Err("`event` must be non-empty".to_string());
    }
    if let Some(worker) = doc.get("worker") {
        worker.as_f64().ok_or("`worker` must be a number")?;
    }
    let fields = doc.get("fields").ok_or("event missing `fields`")?;
    let entries = fields.as_obj().ok_or("`fields` must be an object")?;
    for (key, value) in entries {
        match value {
            Json::Num(_) | Json::Str(_) | Json::Bool(_) => {}
            _ => return Err(format!("field `{key}` must be a scalar")),
        }
    }
    Ok(())
}

/// What [`validate_events`] found in a JSONL stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventsSummary {
    /// Number of validated event lines (lines with a `level` member).
    pub events: usize,
    /// `Some(problem)` when the final non-empty line was not valid JSON
    /// — the signature a crashed writer leaves (a line torn mid-write).
    /// Tolerated so one truncated tail never invalidates the thousands
    /// of good lines before it, but reported so the reader knows the
    /// stream is from an unclean shutdown.
    pub truncated_tail: Option<String>,
}

/// Validates a whole JSONL stream (one document per non-empty line).
/// Returns the number of validated event lines, tolerating (and
/// reporting) an unparseable *final* line as a truncated tail.
///
/// # Errors
///
/// The first offending line number and its problem — for any line
/// other than a torn final one.
pub fn validate_events(content: &str) -> Result<EventsSummary, String> {
    let mut summary = EventsSummary::default();
    let last_line = content.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).last();
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = validate_event_line(line) {
            // Only an unparseable final line can be a torn tail; a line
            // that parses but violates the event schema is a producer
            // bug wherever it sits.
            if last_line.map(|(j, _)| j) == Some(i) && parse(line).is_err() {
                summary.truncated_tail = Some(format!("line {}: {e}", i + 1));
                break;
            }
            return Err(format!("line {}: {e}", i + 1));
        }
        if parse(line).is_ok_and(|d| d.get("level").is_some()) {
            summary.events += 1;
        }
    }
    Ok(summary)
}

/// What [`validate_flight`] found in a flight-recorder dump.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightSummary {
    /// The dump's `reason` (why the black box was written).
    pub reason: String,
    /// Record count the sealed header declares.
    pub declared: usize,
    /// Record lines actually validated.
    pub records: usize,
    /// As [`EventsSummary::truncated_tail`]: a torn final line, only
    /// possible on a `.partial` dump a crash interrupted.
    pub truncated_tail: Option<String>,
}

/// Validates an `a2a-obs/flight/v1` dump stream: the first non-empty
/// line must be the sealed header (schema, verified checksum, reason
/// and counts), every following line must satisfy the `events/v1` line
/// schema, and — unless the stream ends in a torn final line — the
/// validated record count must equal the header's declaration. A torn
/// tail is tolerated and reported, exactly as in [`validate_events`].
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_flight(content: &str) -> Result<FlightSummary, String> {
    let lines: Vec<&str> = content.lines().collect();
    let header_idx = lines
        .iter()
        .position(|l| !l.trim().is_empty())
        .ok_or("empty flight dump")?;
    let header = parse(lines[header_idx]).map_err(|e| format!("header: {e}"))?;
    let schema = header.get("schema").and_then(Json::as_str).ok_or("header missing `schema`")?;
    if schema != FLIGHT_SCHEMA {
        return Err(format!("schema `{schema}` is not `{FLIGHT_SCHEMA}`"));
    }
    verify_checksum(&header).map_err(|e| format!("header: {e}"))?;
    let reason = header
        .get("reason")
        .and_then(Json::as_str)
        .ok_or("header missing string `reason`")?
        .to_string();
    let declared = require_num(&header, "header", "records")? as usize;
    require_num(&header, "header", "threads")?;
    require_num(&header, "header", "dropped")?;

    let body = lines[header_idx + 1..].join("\n");
    let events = validate_events(&body)?;
    let summary = FlightSummary {
        reason,
        declared,
        records: events.events,
        truncated_tail: events.truncated_tail,
    };
    match summary.truncated_tail {
        None if summary.records != declared => Err(format!(
            "header declares {declared} records but the stream holds {}",
            summary.records
        )),
        Some(_) if summary.records >= declared => Err(format!(
            "torn stream holds {} records yet the header declares only {declared}",
            summary.records
        )),
        _ => Ok(summary),
    }
}

/// Validates one sealed `results/bench_history.jsonl` line
/// (`a2a-obs/bench-history/v1`) and returns the parsed document: the
/// per-run trend point `obs_report` plots. Requires positive
/// `kernel.speedup` / `kernel.sliced_speedup` / `fitness.speedup`
/// ratios plus a numeric `t_ms` stamp. Newer lines also carry
/// `kernel.frontier_speedup`, `kernel.frontier_active` and
/// `kernel.dispatch_workers`; those are optional (pre-v3 lines stay
/// valid) but type- and sign-checked when present, and
/// `frontier_speedup < 1` is rejected — a frontier kernel slower than
/// its own dense scan is a regression whatever machine ran it.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_history_line(line: &str) -> Result<Json, String> {
    let doc = parse(line)?;
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing `schema`")?;
    if schema != BENCH_HISTORY_SCHEMA {
        return Err(format!("schema `{schema}` is not `{BENCH_HISTORY_SCHEMA}`"));
    }
    verify_checksum(&doc)?;
    require_num(&doc, "history", "t_ms")?;
    let kernel = doc.get("kernel").ok_or("missing `kernel`")?;
    for key in ["speedup", "sliced_speedup"] {
        let v = require_num(kernel, "kernel", key)?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("`kernel.{key}` must be a positive ratio"));
        }
    }
    if let Some(v) = kernel.get("frontier_speedup") {
        let v = v.as_f64().ok_or("`kernel.frontier_speedup` must be a number")?;
        if !v.is_finite() || v < 1.0 {
            return Err(format!(
                "`kernel.frontier_speedup` is {v}: the frontier kernel must not be slower \
                 than its own dense scan"
            ));
        }
    }
    for key in ["frontier_active", "dispatch_workers"] {
        if let Some(v) = kernel.get(key) {
            let v = v.as_f64().ok_or_else(|| format!("`kernel.{key}` must be a number"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("`kernel.{key}` must be non-negative"));
            }
        }
    }
    let fitness = doc.get("fitness").ok_or("missing `fitness`")?;
    let v = require_num(fitness, "fitness", "speedup")?;
    if !v.is_finite() || v <= 0.0 {
        return Err("`fitness.speedup` must be a positive ratio".to_string());
    }
    Ok(doc)
}

/// Validates a whole `bench_history.jsonl` stream and returns the
/// parsed entries in file order, tolerating (and dropping) an
/// unparseable *final* line — the append-only file may be mid-write
/// when read.
///
/// # Errors
///
/// The first offending line number and its problem — for any line
/// other than a torn final one.
pub fn validate_history(content: &str) -> Result<Vec<Json>, String> {
    let mut entries = Vec::new();
    let last_line = content.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).last();
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match validate_history_line(line) {
            Ok(doc) => entries.push(doc),
            Err(e) => {
                if last_line.map(|(j, _)| j) == Some(i) && parse(line).is_err() {
                    break; // torn tail of an in-flight append
                }
                return Err(format!("line {}: {e}", i + 1));
            }
        }
    }
    Ok(entries)
}

fn require_num(doc: &Json, path: &str, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("`{path}.{key}` must be a number"))
}

/// Validates a parsed `BENCH_obs.json` document against
/// `a2a-obs/bench-snapshot/v1`.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_bench_snapshot(doc: &Json) -> Result<(), String> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing `schema`")?;
    if schema != BENCH_SNAPSHOT_SCHEMA {
        return Err(format!("schema `{schema}` is not `{BENCH_SNAPSHOT_SCHEMA}`"));
    }
    verify_checksum(doc)?;

    let kernel = doc.get("kernel").ok_or("missing `kernel`")?;
    let sps = require_num(kernel, "kernel", "steps_per_sec")?;
    if !sps.is_finite() || sps <= 0.0 {
        return Err("`kernel.steps_per_sec` must be positive".to_string());
    }
    let fitness = doc.get("fitness").ok_or("missing `fitness`")?;
    let eps = require_num(fitness, "fitness", "evals_per_sec")?;
    if !eps.is_finite() || eps <= 0.0 {
        return Err("`fitness.evals_per_sec` must be positive".to_string());
    }

    let t_comm = doc.get("t_comm").and_then(Json::as_arr).ok_or("missing `t_comm` array")?;
    for required_k in REQUIRED_T_COMM_KS {
        let entry = t_comm
            .iter()
            .find(|e| e.get("k").and_then(Json::as_f64) == Some(required_k as f64))
            .ok_or_else(|| format!("`t_comm` missing an entry for k = {required_k}"))?;
        entry.get("grid").and_then(Json::as_str).ok_or("t_comm entry missing `grid`")?;
        let hist = entry.get("histogram").ok_or("t_comm entry missing `histogram`")?;
        let snap = HistogramSnapshot::from_json(hist)?;
        if snap.count == 0 {
            return Err(format!("t_comm histogram for k = {required_k} is empty"));
        }
    }

    let ga = doc.get("ga").ok_or("missing `ga`")?;
    let series = ga.get("series").and_then(Json::as_arr).ok_or("missing `ga.series`")?;
    if series.is_empty() {
        return Err("`ga.series` must be non-empty".to_string());
    }
    for point in series {
        require_num(point, "ga.series[]", "generation")?;
        require_num(point, "ga.series[]", "best")?;
        require_num(point, "ga.series[]", "median")?;
    }
    Ok(())
}

/// Validates a parsed `BENCH_fitness.json` document against
/// `a2a-obs/fitness-bench/v1`: structural members present, the adaptive
/// path not slower than the baseline, and reports bit-identical.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_fitness_snapshot(doc: &Json) -> Result<(), String> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing `schema`")?;
    if schema != FITNESS_BENCH_SCHEMA {
        return Err(format!("schema `{schema}` is not `{FITNESS_BENCH_SCHEMA}`"));
    }
    verify_checksum(doc)?;

    let workload = doc.get("workload").ok_or("missing `workload`")?;
    for key in ["population", "children", "configs", "k"] {
        let v = require_num(workload, "workload", key)?;
        if v <= 0.0 {
            return Err(format!("`workload.{key}` must be positive"));
        }
    }
    workload.get("grid").and_then(Json::as_str).ok_or("`workload.grid` must be a string")?;

    let baseline = doc.get("baseline").ok_or("missing `baseline`")?;
    let baseline_us = require_num(baseline, "baseline", "elapsed_us")?;
    let adaptive = doc.get("adaptive").ok_or("missing `adaptive`")?;
    let adaptive_us = require_num(adaptive, "adaptive", "elapsed_us")?;
    for key in ["cache_hits", "cache_misses"] {
        require_num(adaptive, "adaptive", key)?;
    }
    if baseline_us <= 0.0 || adaptive_us <= 0.0 {
        return Err("elapsed times must be positive".to_string());
    }

    let selection = doc.get("selection").ok_or("missing `selection`")?;
    for key in ["pruned_genomes", "pruned_configs", "exact"] {
        require_num(selection, "selection", key)?;
    }

    let speedup = doc.get("speedup").and_then(Json::as_f64).ok_or("missing `speedup`")?;
    if !speedup.is_finite() || speedup < 1.0 {
        return Err(format!(
            "`speedup` is {speedup:.3}: the adaptive pipeline must not be slower than the baseline"
        ));
    }
    match doc.get("identical_reports") {
        Some(Json::Bool(true)) => Ok(()),
        Some(Json::Bool(false)) => {
            Err("`identical_reports` is false: the adaptive path changed results".to_string())
        }
        _ => Err("missing boolean `identical_reports`".to_string()),
    }
}

/// Validates a parsed `BENCH_serve.json` document against
/// `a2a-obs/serve-bench/v1`: the load test must have completed every
/// submitted job with zero lost or duplicated results, observed both
/// queue backpressure (≥ 1 rejection with a `Retry-After` header) and
/// a per-tenant quota rejection, and recorded a positive throughput
/// with a monotone latency distribution.
///
/// ```json
/// {
///   "schema": "a2a-obs/serve-bench/v1",
///   "workload": {"jobs": 1000, "tenants": 4, "clients": 8},
///   "jobs": {"submitted": 1000, "completed": 1000, "lost": 0, "duplicated": 0},
///   "backpressure": {"rejected_429": 17, "retry_after": true},
///   "quota": {"rejected_429": 3},
///   "throughput": {"jobs_per_sec": 210.0, "elapsed_us": 4.7e6},
///   "latency_ms": {"p50": 12.0, "p90": 31.0, "p99": 55.0},
///   "checksum": "…"
/// }
/// ```
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_serve_snapshot(doc: &Json) -> Result<(), String> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing `schema`")?;
    if schema != SERVE_BENCH_SCHEMA {
        return Err(format!("schema `{schema}` is not `{SERVE_BENCH_SCHEMA}`"));
    }
    verify_checksum(doc)?;

    let workload = doc.get("workload").ok_or("missing `workload`")?;
    for key in ["jobs", "tenants", "clients"] {
        let v = require_num(workload, "workload", key)?;
        if v <= 0.0 {
            return Err(format!("`workload.{key}` must be positive"));
        }
    }

    let jobs = doc.get("jobs").ok_or("missing `jobs`")?;
    let submitted = require_num(jobs, "jobs", "submitted")?;
    let completed = require_num(jobs, "jobs", "completed")?;
    let lost = require_num(jobs, "jobs", "lost")?;
    let duplicated = require_num(jobs, "jobs", "duplicated")?;
    if submitted <= 0.0 {
        return Err("`jobs.submitted` must be positive".to_string());
    }
    if lost != 0.0 {
        return Err(format!("`jobs.lost` is {lost}: the service dropped jobs"));
    }
    if duplicated != 0.0 {
        return Err(format!("`jobs.duplicated` is {duplicated}: the service duplicated jobs"));
    }
    if completed != submitted {
        return Err(format!(
            "`jobs.completed` ({completed}) must equal `jobs.submitted` ({submitted})"
        ));
    }

    let backpressure = doc.get("backpressure").ok_or("missing `backpressure`")?;
    let rejected = require_num(backpressure, "backpressure", "rejected_429")?;
    if rejected < 1.0 {
        return Err("`backpressure.rejected_429` must be ≥ 1 (full queue never observed)".into());
    }
    match backpressure.get("retry_after") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            return Err("`backpressure.retry_after` is false: 429 lacked Retry-After".into())
        }
        _ => return Err("missing boolean `backpressure.retry_after`".into()),
    }
    let quota = doc.get("quota").ok_or("missing `quota`")?;
    let quota_rejected = require_num(quota, "quota", "rejected_429")?;
    if quota_rejected < 1.0 {
        return Err("`quota.rejected_429` must be ≥ 1 (tenant quota never observed)".into());
    }

    let throughput = doc.get("throughput").ok_or("missing `throughput`")?;
    let jps = require_num(throughput, "throughput", "jobs_per_sec")?;
    if !jps.is_finite() || jps <= 0.0 {
        return Err("`throughput.jobs_per_sec` must be positive".to_string());
    }
    require_num(throughput, "throughput", "elapsed_us")?;

    let latency = doc.get("latency_ms").ok_or("missing `latency_ms`")?;
    let p50 = require_num(latency, "latency_ms", "p50")?;
    let p90 = require_num(latency, "latency_ms", "p90")?;
    let p99 = require_num(latency, "latency_ms", "p99")?;
    if !(p50 <= p90 && p90 <= p99) {
        return Err(format!(
            "`latency_ms` percentiles must be monotone (p50 {p50} ≤ p90 {p90} ≤ p99 {p99})"
        ));
    }
    Ok(())
}

/// Validates a parsed `BENCH_campaign.json` document against
/// `a2a-obs/campaign-bench/v1`.
///
/// Gates, in order:
///
/// * checksum and schema;
/// * `workload.{niches,shards,rounds,batch}` positive;
/// * `throughput.evals_per_sec` positive and finite, `throughput.evals`
///   positive;
/// * `dedup.hits ≥ 1` and `dedup.hit_rate > 0` — the campaign-wide
///   digest set must demonstrably skip work;
/// * `scaling.ratio` positive and finite, and ≥
///   [`CAMPAIGN_SHARD_SPEEDUP_GATE`] once `scaling.cores` ≥
///   [`PARALLEL_GATE_MIN_WORKERS`] (on smaller hosts the ratio is
///   recorded, not floored — one core cannot honestly bind a
///   multi-process target);
/// * `coverage_curve` non-empty with monotone non-decreasing `covered`,
///   `solved` and cumulative `evals`, and final coverage ≥ 1 niche.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_campaign_snapshot(doc: &Json) -> Result<(), String> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing `schema`")?;
    if schema != CAMPAIGN_BENCH_SCHEMA {
        return Err(format!("schema `{schema}` is not `{CAMPAIGN_BENCH_SCHEMA}`"));
    }
    verify_checksum(doc)?;

    let workload = doc.get("workload").ok_or("missing `workload`")?;
    for key in ["niches", "shards", "rounds", "batch"] {
        let v = require_num(workload, "workload", key)?;
        if v <= 0.0 {
            return Err(format!("`workload.{key}` must be positive"));
        }
    }

    let throughput = doc.get("throughput").ok_or("missing `throughput`")?;
    let eps = require_num(throughput, "throughput", "evals_per_sec")?;
    if !eps.is_finite() || eps <= 0.0 {
        return Err("`throughput.evals_per_sec` must be positive".to_string());
    }
    if require_num(throughput, "throughput", "evals")? <= 0.0 {
        return Err("`throughput.evals` must be positive".to_string());
    }
    require_num(throughput, "throughput", "elapsed_us")?;

    let dedup = doc.get("dedup").ok_or("missing `dedup`")?;
    let hits = require_num(dedup, "dedup", "hits")?;
    let rate = require_num(dedup, "dedup", "hit_rate")?;
    if hits < 1.0 {
        return Err("`dedup.hits` must be ≥ 1 (digest set never skipped work)".to_string());
    }
    if !(rate > 0.0 && rate < 1.0) {
        return Err(format!("`dedup.hit_rate` is {rate}: must lie in (0, 1)"));
    }

    let scaling = doc.get("scaling").ok_or("missing `scaling`")?;
    let cores = require_num(scaling, "scaling", "cores")?;
    let ratio = require_num(scaling, "scaling", "ratio")?;
    require_num(scaling, "scaling", "single_evals_per_sec")?;
    require_num(scaling, "scaling", "sharded_evals_per_sec")?;
    if cores < 1.0 {
        return Err("`scaling.cores` must be ≥ 1".to_string());
    }
    if !ratio.is_finite() || ratio <= 0.0 {
        return Err(format!("`scaling.ratio` is {ratio}: must be positive and finite"));
    }
    if cores >= PARALLEL_GATE_MIN_WORKERS && ratio < CAMPAIGN_SHARD_SPEEDUP_GATE {
        return Err(format!(
            "`scaling.ratio` {ratio:.2} < {CAMPAIGN_SHARD_SPEEDUP_GATE}: sharded aggregate \
             throughput must reach {CAMPAIGN_SHARD_SPEEDUP_GATE}x over the 1-shard run \
             once {PARALLEL_GATE_MIN_WORKERS}+ cores are available"
        ));
    }

    let curve = doc
        .get("coverage_curve")
        .and_then(Json::as_arr)
        .ok_or("missing `coverage_curve` array")?;
    if curve.is_empty() {
        return Err("`coverage_curve` must not be empty".to_string());
    }
    let mut prev: Option<(f64, f64, f64)> = None;
    for (i, point) in curve.iter().enumerate() {
        let path = format!("coverage_curve[{i}]");
        let covered = require_num(point, &path, "covered")?;
        let solved = require_num(point, &path, "solved")?;
        let evals = require_num(point, &path, "evals")?;
        if let Some((pc, ps, pe)) = prev {
            if covered < pc || solved < ps || evals < pe {
                return Err(format!(
                    "`coverage_curve` must be monotone: point {i} regressed \
                     (covered {pc}→{covered}, solved {ps}→{solved}, evals {pe}→{evals})"
                ));
            }
        }
        prev = Some((covered, solved, evals));
    }
    if prev.map(|(c, _, _)| c).unwrap_or(0.0) < 1.0 {
        return Err("`coverage_curve` final `covered` must be ≥ 1 niche".to_string());
    }
    Ok(())
}

/// Validates a parsed `BENCH_kernel.json` document against
/// `a2a-obs/kernel-bench/v3`: structural members present, all five
/// paths' throughputs positive, the multi-run path not slower than the
/// single-run path, the frontier kernel not slower than its own dense
/// scan, the parallel path gated ≥ [`PARALLEL_SPEEDUP_GATE`] once the
/// dispatcher has ≥ [`PARALLEL_GATE_MIN_WORKERS`] workers, the
/// bit-sliced series present with a positive ratio (its value is
/// regression-gated, not floored at 1 — see the module docs), a
/// non-empty active-fraction histogram, and outcomes bit-identical
/// across every engine.
///
/// ```json
/// {
///   "schema": "a2a-obs/kernel-bench/v3",
///   "workload": {"population": 8, "configs": 100, "k": 16, "grid": "T"},
///   "single": {"elapsed_us": 9.0e5, "steps_per_sec": 1.1e6, "evals_per_sec": 890.0},
///   "dense": {"elapsed_us": 6.9e5, "steps_per_sec": 1.5e6, "evals_per_sec": 1160.0,
///             "chunk": 51},
///   "multi": {"elapsed_us": 4.3e5, "steps_per_sec": 2.3e6, "evals_per_sec": 1860.0,
///             "chunk": 51},
///   "parallel": {"elapsed_us": 4.4e5, "steps_per_sec": 2.2e6, "evals_per_sec": 1820.0,
///                "chunk": 51, "workers": 1},
///   "sliced": {"elapsed_us": 9.5e5, "steps_per_sec": 1.0e6, "evals_per_sec": 840.0,
///              "chunk": 320},
///   "speedup": 1.52,
///   "frontier_speedup": 1.61,
///   "parallel_speedup": 1.57,
///   "sliced_speedup": 0.45,
///   "frontier": {"active_agent_steps": 123456,
///                "active_pct": {"count": 800, "sum": 31000, ...}},
///   "identical_outcomes": true
/// }
/// ```
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_kernel_snapshot(doc: &Json) -> Result<(), String> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing `schema`")?;
    if schema != KERNEL_BENCH_SCHEMA {
        return Err(format!("schema `{schema}` is not `{KERNEL_BENCH_SCHEMA}`"));
    }
    verify_checksum(doc)?;

    let workload = doc.get("workload").ok_or("missing `workload`")?;
    for key in ["population", "configs", "k"] {
        let v = require_num(workload, "workload", key)?;
        if v <= 0.0 {
            return Err(format!("`workload.{key}` must be positive"));
        }
    }
    workload.get("grid").and_then(Json::as_str).ok_or("`workload.grid` must be a string")?;

    for engine in ["single", "dense", "multi", "parallel", "sliced"] {
        let section = doc.get(engine).ok_or_else(|| format!("missing `{engine}`"))?;
        for key in ["elapsed_us", "steps_per_sec", "evals_per_sec"] {
            let v = require_num(section, engine, key)?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("`{engine}.{key}` must be positive"));
            }
        }
        if engine != "single" {
            require_num(section, engine, "chunk")?;
        }
    }
    let workers = require_num(doc.get("parallel").expect("checked above"), "parallel", "workers")?;
    if workers < 1.0 {
        return Err(format!("`parallel.workers` is {workers}: must be at least 1"));
    }

    let speedup = doc.get("speedup").and_then(Json::as_f64).ok_or("missing `speedup`")?;
    if !speedup.is_finite() || speedup < 1.0 {
        return Err(format!(
            "`speedup` is {speedup:.3}: the multi-run kernel must not be slower than the \
             single-run path"
        ));
    }
    let frontier_speedup = doc
        .get("frontier_speedup")
        .and_then(Json::as_f64)
        .ok_or("missing `frontier_speedup`")?;
    if !frontier_speedup.is_finite() || frontier_speedup < 1.0 {
        return Err(format!(
            "`frontier_speedup` is {frontier_speedup:.3}: the frontier kernel must not be \
             slower than its own dense scan"
        ));
    }
    let parallel_speedup = doc
        .get("parallel_speedup")
        .and_then(Json::as_f64)
        .ok_or("missing `parallel_speedup`")?;
    if !parallel_speedup.is_finite() || parallel_speedup <= 0.0 {
        return Err(format!("`parallel_speedup` is {parallel_speedup}: must be a positive ratio"));
    }
    if workers >= PARALLEL_GATE_MIN_WORKERS && parallel_speedup < PARALLEL_SPEEDUP_GATE {
        return Err(format!(
            "`parallel_speedup` is {parallel_speedup:.3} with {workers} workers: the \
             dispatcher must reach {PARALLEL_SPEEDUP_GATE}x over the dense single-thread \
             baseline once {PARALLEL_GATE_MIN_WORKERS}+ cores are available"
        ));
    }
    let sliced =
        doc.get("sliced_speedup").and_then(Json::as_f64).ok_or("missing `sliced_speedup`")?;
    if !sliced.is_finite() || sliced <= 0.0 {
        return Err(format!("`sliced_speedup` is {sliced}: must be a positive ratio"));
    }

    let frontier = doc.get("frontier").ok_or("missing `frontier`")?;
    let steps = require_num(frontier, "frontier", "active_agent_steps")?;
    if steps <= 0.0 {
        return Err("`frontier.active_agent_steps` must be positive".to_string());
    }
    let hist = frontier.get("active_pct").ok_or("`frontier` missing `active_pct` histogram")?;
    let snap = HistogramSnapshot::from_json(hist)?;
    if snap.count == 0 {
        return Err("`frontier.active_pct` histogram is empty".to_string());
    }

    match doc.get("identical_outcomes") {
        Some(Json::Bool(true)) => Ok(()),
        Some(Json::Bool(false)) => {
            Err("`identical_outcomes` is false: a batch kernel changed results".to_string())
        }
        _ => Err("missing boolean `identical_outcomes`".to_string()),
    }
}

/// Gates a fresh `BENCH_kernel.json` against a checked-in baseline
/// snapshot: both must validate, and each fresh *speedup ratio*
/// (`speedup`, `frontier_speedup` and `sliced_speedup`) must be at least
/// [`KERNEL_REGRESSION_FLOOR`] of the baseline's. The ratios are
/// dimensionless, so the gate is meaningful across machines of
/// different absolute throughput (CI runners vs. the machine that
/// recorded the baseline) — and gating `sliced_speedup` relatively is
/// what pins the bit-sliced series against rot without pretending it
/// beats the run-major path.
///
/// # Errors
///
/// A message naming the first violated constraint, including the two
/// ratios when a regression gate trips.
pub fn validate_kernel_regression(baseline: &Json, fresh: &Json) -> Result<(), String> {
    validate_kernel_snapshot(baseline).map_err(|e| format!("baseline: {e}"))?;
    validate_kernel_snapshot(fresh).map_err(|e| format!("fresh: {e}"))?;
    for key in ["speedup", "frontier_speedup", "sliced_speedup"] {
        let base = baseline.get(key).and_then(Json::as_f64).expect("validated above");
        let now = fresh.get(key).and_then(Json::as_f64).expect("validated above");
        if now < KERNEL_REGRESSION_FLOOR * base {
            return Err(format!(
                "kernel {key} regressed more than {:.0} %: baseline {base:.3}x, fresh {now:.3}x",
                (1.0 - KERNEL_REGRESSION_FLOOR) * 100.0
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Value};

    #[test]
    fn real_event_lines_validate() {
        let mut e = Event::new(Level::Info, "ga.generation");
        e.fields.push(("best", Value::F64(123.5)));
        e.worker = Some(3);
        validate_event_line(&e.to_json().to_string()).unwrap();
    }

    #[test]
    fn auxiliary_lines_pass_and_noise_fails() {
        validate_event_line(r#"{"counters":{"a":1}}"#).unwrap();
        assert!(validate_event_line("not json").is_err());
        assert!(validate_event_line("[1,2]").is_err());
        assert!(validate_event_line(r#"{"level":"loud","t_ms":1,"event":"x","fields":{}}"#)
            .is_err());
        assert!(validate_event_line(r#"{"level":"info","event":"x","fields":{}}"#).is_err());
        assert!(
            validate_event_line(r#"{"level":"info","t_ms":1,"event":"x","fields":{"a":[1]}}"#)
                .is_err()
        );
    }

    #[test]
    fn stream_validation_counts_events() {
        let stream = format!(
            "{}\n\n{}\n",
            Event::new(Level::Debug, "a.b").to_json(),
            r#"{"snapshot":true}"#
        );
        let summary = validate_events(&stream).unwrap();
        assert_eq!(summary.events, 1);
        assert_eq!(summary.truncated_tail, None);
    }

    #[test]
    fn torn_final_line_is_tolerated_and_reported() {
        let good = Event::new(Level::Debug, "a.b").to_json().to_string();
        let torn = format!("{good}\n{good}\n{{\"level\":\"info\",\"t_ms\":12.5,\"ev");
        let summary = validate_events(&torn).unwrap();
        assert_eq!(summary.events, 2, "lines before the tear all count");
        assert!(summary.truncated_tail.is_some());

        // The same garbage anywhere but the tail is a hard error...
        let mid = format!("{good}\nnot json\n{good}\n");
        assert!(validate_events(&mid).is_err());
        // ...and a final line that parses but violates the schema is
        // a producer bug, not a tear.
        let bad_schema = format!("{good}\n{{\"level\":\"loud\",\"t_ms\":1,\"event\":\"x\",\"fields\":{{}}}}");
        assert!(validate_events(&bad_schema).is_err());
    }

    fn flight_dump(records: usize) -> String {
        let header = seal(
            Json::object()
                .with("schema", FLIGHT_SCHEMA)
                .with("reason", "test")
                .with("t_ms", 1.5)
                .with("threads", 1u64)
                .with("records", records as u64)
                .with("dropped", 0u64),
        );
        let mut out = format!("{header}\n");
        for i in 0..records {
            out.push_str(&format!(
                "{{\"t_ms\":{i}.5,\"level\":\"trace\",\"event\":\"t.r\",\
                 \"fields\":{{\"kind\":\"mark\",\"seq\":{i},\"thread\":0,\"a\":1,\"b\":2}}}}\n"
            ));
        }
        out
    }

    #[test]
    fn flight_dumps_validate() {
        let summary = validate_flight(&flight_dump(3)).unwrap();
        assert_eq!((summary.declared, summary.records), (3, 3));
        assert_eq!(summary.reason, "test");
        assert_eq!(summary.truncated_tail, None);
    }

    #[test]
    fn flight_header_gates() {
        assert!(validate_flight("").is_err());
        assert!(validate_flight("{\"schema\":\"other/v0\"}\n").is_err());
        // Unsealed header fails even with the right schema.
        let unsealed = format!(
            "{}\n",
            Json::object()
                .with("schema", FLIGHT_SCHEMA)
                .with("reason", "x")
                .with("threads", 0u64)
                .with("records", 0u64)
                .with("dropped", 0u64)
        );
        assert!(validate_flight(&unsealed).unwrap_err().contains("checksum"));
        // A record-count mismatch on an untorn stream is truncation.
        let mut short = flight_dump(3);
        short = short.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(validate_flight(&short).unwrap_err().contains("declares 3"));
    }

    #[test]
    fn flight_stream_tolerates_exactly_one_torn_final_line() {
        // The `validate_events` torn-tail discipline extends to the
        // flight stream: a crash mid-append tears at most the last line.
        let mut torn = flight_dump(3);
        torn.truncate(torn.len() - 20); // tear the final record line
        let summary = validate_flight(&torn).unwrap();
        assert_eq!(summary.records, 2, "lines before the tear count");
        assert!(summary.truncated_tail.is_some());

        // Mid-stream garbage is a hard error even in a flight dump.
        let mid = flight_dump(2).replace(
            "\"seq\":0",
            "\"seq\":0}GARBAGE{",
        );
        assert!(validate_flight(&mid).is_err());
    }

    fn history_line() -> String {
        seal(Json::object()
            .with("schema", BENCH_HISTORY_SCHEMA)
            .with("t_ms", 10.0)
            .with("run", Json::object().with("configs", 20u64).with("seed", 2013u64))
            .with(
                "kernel",
                Json::object()
                    .with("speedup", 1.7)
                    .with("sliced_speedup", 0.4)
                    .with("multi_steps_per_sec", 1.9e6),
            )
            .with(
                "fitness",
                Json::object().with("speedup", 2.5).with("evals_per_sec", 1530.0),
            ))
        .to_string()
    }

    #[test]
    fn history_lines_validate_and_gate() {
        validate_history_line(&history_line()).unwrap();
        let entries = validate_history(&format!("{}\n{}\n", history_line(), history_line()))
            .unwrap();
        assert_eq!(entries.len(), 2);

        // A torn final append is dropped, mid-stream garbage is fatal.
        let torn = format!("{}\n{}", history_line(), &history_line()[..30]);
        assert_eq!(validate_history(&torn).unwrap().len(), 1);
        let mid = format!("not json\n{}\n", history_line());
        assert!(validate_history(&mid).is_err());

        // Tampered ratios trip the seal; a zero ratio trips the gate.
        let mut doc = parse(&history_line()).unwrap();
        doc.set("t_ms", 99.0);
        assert!(validate_history_line(&doc.to_string()).unwrap_err().contains("checksum"));
        let zeroed = resealed(
            parse(&history_line()).unwrap(),
            "kernel",
            Json::object().with("speedup", 0.0).with("sliced_speedup", 0.4),
        );
        assert!(validate_history_line(&zeroed.to_string()).is_err());
    }

    #[test]
    fn history_frontier_fields_are_optional_but_gated() {
        // Pre-v3 lines (no frontier fields) stay valid — that's the
        // fixture. Lines carrying them are sign-checked.
        let with_frontier = resealed(
            parse(&history_line()).unwrap(),
            "kernel",
            Json::object()
                .with("speedup", 1.7)
                .with("sliced_speedup", 0.4)
                .with("frontier_speedup", 1.6)
                .with("frontier_active", 123_456u64)
                .with("dispatch_workers", 1u64),
        );
        validate_history_line(&with_frontier.to_string()).unwrap();

        // `frontier_speedup < 1` is a regression wherever it ran.
        let slow = resealed(
            parse(&history_line()).unwrap(),
            "kernel",
            Json::object()
                .with("speedup", 1.7)
                .with("sliced_speedup", 0.4)
                .with("frontier_speedup", 0.9),
        );
        let err = validate_history_line(&slow.to_string()).unwrap_err();
        assert!(err.contains("frontier_speedup"), "got: {err}");

        let bad_workers = resealed(
            parse(&history_line()).unwrap(),
            "kernel",
            Json::object()
                .with("speedup", 1.7)
                .with("sliced_speedup", 0.4)
                .with("dispatch_workers", -1i64),
        );
        assert!(validate_history_line(&bad_workers.to_string()).is_err());
    }

    #[test]
    fn checksums_seal_and_verify() {
        let doc = Json::object().with("schema", "x/v1").with("value", 7u64);
        assert!(verify_checksum(&doc).is_err(), "unsealed documents fail");
        let sealed = seal(doc);
        verify_checksum(&sealed).unwrap();
        // Sealing is idempotent w.r.t. the existing checksum member.
        verify_checksum(&seal(sealed.clone())).unwrap();
        let mut tampered = sealed;
        tampered.set("value", 8u64);
        assert!(verify_checksum(&tampered).is_err(), "edits invalidate the seal");
    }

    fn minimal_snapshot() -> Json {
        let mut hist = HistogramSnapshot::default();
        hist.record(42);
        let t_comm: Vec<Json> = REQUIRED_T_COMM_KS
            .iter()
            .map(|&k| {
                Json::object()
                    .with("grid", "T")
                    .with("k", k)
                    .with("histogram", hist.to_json())
            })
            .collect();
        seal(
            Json::object()
                .with("schema", BENCH_SNAPSHOT_SCHEMA)
                .with("kernel", Json::object().with("steps_per_sec", 1e6))
                .with("fitness", Json::object().with("evals_per_sec", 100.0))
                .with("t_comm", Json::Arr(t_comm))
                .with(
                    "ga",
                    Json::object().with(
                        "series",
                        vec![Json::object()
                            .with("generation", 0u64)
                            .with("best", 1e4)
                            .with("median", 2e4)],
                    ),
                ),
        )
    }

    fn minimal_fitness_snapshot() -> Json {
        seal(Json::object()
            .with("schema", FITNESS_BENCH_SCHEMA)
            .with(
                "workload",
                Json::object()
                    .with("population", 20u64)
                    .with("children", 10u64)
                    .with("configs", 100u64)
                    .with("k", 16u64)
                    .with("grid", "T"),
            )
            .with("baseline", Json::object().with("elapsed_us", 1e6).with("epochs", 2u64))
            .with(
                "adaptive",
                Json::object()
                    .with("elapsed_us", 4e5)
                    .with("cache_hits", 20u64)
                    .with("cache_misses", 20u64),
            )
            .with(
                "selection",
                Json::object()
                    .with("elapsed_us", 1e5)
                    .with("pruned_genomes", 6u64)
                    .with("pruned_configs", 540u64)
                    .with("exact", 4u64),
            )
            .with("speedup", 2.5)
            .with("identical_reports", true))
    }

    /// Mutates a sealed fixture and re-seals, so the intended gate (not
    /// the checksum) is what the validator trips on.
    fn resealed(mut doc: Json, key: &str, value: Json) -> Json {
        doc.set(key, value);
        seal(doc)
    }

    fn kernel_engine(us: f64, chunk: Option<u64>) -> Json {
        let mut section = Json::object()
            .with("elapsed_us", us)
            .with("steps_per_sec", 1e8 / us)
            .with("evals_per_sec", 8e8 / us);
        if let Some(c) = chunk {
            section = section.with("chunk", c);
        }
        section
    }

    fn minimal_kernel_snapshot() -> Json {
        let mut active = HistogramSnapshot::default();
        active.record(62);
        active.record(31);
        seal(Json::object()
            .with("schema", KERNEL_BENCH_SCHEMA)
            .with(
                "workload",
                Json::object()
                    .with("population", 8u64)
                    .with("configs", 100u64)
                    .with("k", 16u64)
                    .with("grid", "T"),
            )
            .with("single", kernel_engine(9e5, None))
            .with("dense", kernel_engine(6.9e5, Some(51)))
            .with("multi", kernel_engine(4.3e5, Some(51)))
            .with("parallel", kernel_engine(4.4e5, Some(51)).with("workers", 1u64))
            .with("sliced", kernel_engine(9.5e5, Some(320)))
            .with("speedup", 2.09)
            .with("frontier_speedup", 1.60)
            .with("parallel_speedup", 1.57)
            .with("sliced_speedup", 0.45)
            .with(
                "frontier",
                Json::object()
                    .with("active_agent_steps", 123_456u64)
                    .with("active_pct", active.to_json()),
            )
            .with("identical_outcomes", true))
    }

    fn minimal_serve_snapshot() -> Json {
        seal(Json::object()
            .with("schema", SERVE_BENCH_SCHEMA)
            .with(
                "workload",
                Json::object().with("jobs", 1000u64).with("tenants", 4u64).with("clients", 8u64),
            )
            .with(
                "jobs",
                Json::object()
                    .with("submitted", 1000u64)
                    .with("completed", 1000u64)
                    .with("lost", 0u64)
                    .with("duplicated", 0u64),
            )
            .with(
                "backpressure",
                Json::object().with("rejected_429", 17u64).with("retry_after", true),
            )
            .with("quota", Json::object().with("rejected_429", 3u64))
            .with(
                "throughput",
                Json::object().with("jobs_per_sec", 210.0).with("elapsed_us", 4.7e6),
            )
            .with(
                "latency_ms",
                Json::object().with("p50", 12.0).with("p90", 31.0).with("p99", 55.0),
            ))
    }

    #[test]
    fn serve_snapshot_validates_and_gates() {
        validate_serve_snapshot(&minimal_serve_snapshot()).unwrap();

        let lossy = resealed(
            minimal_serve_snapshot(),
            "jobs",
            Json::object()
                .with("submitted", 1000u64)
                .with("completed", 999u64)
                .with("lost", 1u64)
                .with("duplicated", 0u64),
        );
        assert!(validate_serve_snapshot(&lossy).is_err(), "lost jobs must fail");

        let duplicated = resealed(
            minimal_serve_snapshot(),
            "jobs",
            Json::object()
                .with("submitted", 1000u64)
                .with("completed", 1001u64)
                .with("lost", 0u64)
                .with("duplicated", 1u64),
        );
        assert!(validate_serve_snapshot(&duplicated).is_err(), "duplicated jobs must fail");

        let no_backpressure = resealed(
            minimal_serve_snapshot(),
            "backpressure",
            Json::object().with("rejected_429", 0u64).with("retry_after", true),
        );
        assert!(
            validate_serve_snapshot(&no_backpressure).is_err(),
            "a load test that never filled the queue proves nothing"
        );

        let no_retry_after = resealed(
            minimal_serve_snapshot(),
            "backpressure",
            Json::object().with("rejected_429", 5u64).with("retry_after", false),
        );
        assert!(validate_serve_snapshot(&no_retry_after).is_err());

        let non_monotone = resealed(
            minimal_serve_snapshot(),
            "latency_ms",
            Json::object().with("p50", 30.0).with("p90", 20.0).with("p99", 55.0),
        );
        assert!(validate_serve_snapshot(&non_monotone).is_err());

        let wrong = resealed(minimal_serve_snapshot(), "schema", "other/v0".into());
        assert!(validate_serve_snapshot(&wrong).is_err());

        let mut tampered = minimal_serve_snapshot();
        tampered.set("quota", Json::object().with("rejected_429", 99u64));
        assert!(validate_serve_snapshot(&tampered).is_err(), "tampering breaks the checksum");
    }

    fn curve_point(round: u64, covered: u64, solved: u64, evals: u64) -> Json {
        Json::object()
            .with("round", round)
            .with("covered", covered)
            .with("solved", solved)
            .with("evals", evals)
    }

    fn minimal_campaign_snapshot() -> Json {
        seal(Json::object()
            .with("schema", CAMPAIGN_BENCH_SCHEMA)
            .with(
                "workload",
                Json::object()
                    .with("niches", 8u64)
                    .with("shards", 4u64)
                    .with("rounds", 3u64)
                    .with("batch", 4u64),
            )
            .with(
                "throughput",
                Json::object()
                    .with("evals_per_sec", 520.0)
                    .with("evals", 96u64)
                    .with("elapsed_us", 1.8e5),
            )
            .with(
                "dedup",
                Json::object().with("hits", 16u64).with("hit_rate", 0.14).with("collisions", 0u64),
            )
            .with(
                "scaling",
                Json::object()
                    .with("cores", 8u64)
                    .with("shards", 4u64)
                    .with("single_evals_per_sec", 200.0)
                    .with("sharded_evals_per_sec", 520.0)
                    .with("ratio", 2.6),
            )
            .with(
                "coverage_curve",
                Json::Arr(vec![
                    curve_point(0, 6, 1, 40),
                    curve_point(1, 8, 2, 70),
                    curve_point(2, 8, 3, 96),
                ]),
            ))
    }

    #[test]
    fn campaign_snapshot_validates_and_gates() {
        validate_campaign_snapshot(&minimal_campaign_snapshot()).unwrap();

        let no_dedup = resealed(
            minimal_campaign_snapshot(),
            "dedup",
            Json::object().with("hits", 0u64).with("hit_rate", 0.0).with("collisions", 0u64),
        );
        assert!(
            validate_campaign_snapshot(&no_dedup).is_err(),
            "a campaign whose digest set never skipped work proves nothing"
        );

        // 8 cores + ratio below the floor → the 2x gate is armed.
        let slow_shards = resealed(
            minimal_campaign_snapshot(),
            "scaling",
            Json::object()
                .with("cores", 8u64)
                .with("shards", 4u64)
                .with("single_evals_per_sec", 200.0)
                .with("sharded_evals_per_sec", 240.0)
                .with("ratio", 1.2),
        );
        assert!(validate_campaign_snapshot(&slow_shards).is_err(), "2x gate armed on 8 cores");

        // 1 core + the same ratio → recorded, not floored.
        let single_core = resealed(
            minimal_campaign_snapshot(),
            "scaling",
            Json::object()
                .with("cores", 1u64)
                .with("shards", 4u64)
                .with("single_evals_per_sec", 200.0)
                .with("sharded_evals_per_sec", 240.0)
                .with("ratio", 1.2),
        );
        validate_campaign_snapshot(&single_core)
            .expect("one core cannot honestly bind a multi-process gate");

        let regressing_curve = resealed(
            minimal_campaign_snapshot(),
            "coverage_curve",
            Json::Arr(vec![curve_point(0, 6, 1, 40), curve_point(1, 5, 1, 70)]),
        );
        assert!(validate_campaign_snapshot(&regressing_curve).is_err(), "coverage regressed");

        let empty_curve =
            resealed(minimal_campaign_snapshot(), "coverage_curve", Json::Arr(Vec::new()));
        assert!(validate_campaign_snapshot(&empty_curve).is_err());

        let wrong = resealed(minimal_campaign_snapshot(), "schema", "other/v0".into());
        assert!(validate_campaign_snapshot(&wrong).is_err());

        let mut tampered = minimal_campaign_snapshot();
        tampered.set("dedup", Json::object().with("hits", 99u64).with("hit_rate", 0.5));
        assert!(validate_campaign_snapshot(&tampered).is_err(), "tampering breaks the checksum");
    }

    #[test]
    fn kernel_snapshot_validates_and_gates() {
        validate_kernel_snapshot(&minimal_kernel_snapshot()).unwrap();

        let slower = resealed(minimal_kernel_snapshot(), "speedup", Json::Num(0.9));
        assert!(validate_kernel_snapshot(&slower).is_err(), "slower-than-single must fail");

        let drifted =
            resealed(minimal_kernel_snapshot(), "identical_outcomes", Json::Bool(false));
        assert!(validate_kernel_snapshot(&drifted).is_err(), "changed results must fail");

        let wrong = resealed(minimal_kernel_snapshot(), "schema", "other/v0".into());
        assert!(validate_kernel_snapshot(&wrong).is_err());

        let gap = resealed(minimal_kernel_snapshot(), "multi", kernel_engine(4.3e5, None));
        assert!(validate_kernel_snapshot(&gap).is_err(), "missing chunk must fail");

        // The sliced series is informational: a ratio below 1 passes,
        // but it must exist and be a positive number.
        let honest = resealed(minimal_kernel_snapshot(), "sliced_speedup", Json::Num(0.4));
        validate_kernel_snapshot(&honest).unwrap();
        let absent = resealed(minimal_kernel_snapshot(), "sliced_speedup", Json::Null);
        assert!(validate_kernel_snapshot(&absent).is_err(), "missing sliced ratio must fail");

        let mut tampered = minimal_kernel_snapshot();
        tampered.set("speedup", 99.0); // edited without re-sealing
        assert!(
            validate_kernel_snapshot(&tampered).unwrap_err().contains("checksum"),
            "unsealed edits trip the checksum gate"
        );
    }

    #[test]
    fn kernel_v3_frontier_and_parallel_gates() {
        // A frontier kernel slower than its own dense scan must fail —
        // this ratio is in-run on one machine, so it is always binding.
        let slow = resealed(minimal_kernel_snapshot(), "frontier_speedup", Json::Num(0.97));
        assert!(
            validate_kernel_snapshot(&slow).unwrap_err().contains("frontier_speedup"),
            "sub-1 frontier ratio must fail"
        );
        let gone = resealed(minimal_kernel_snapshot(), "frontier_speedup", Json::Null);
        assert!(validate_kernel_snapshot(&gone).is_err(), "missing frontier ratio must fail");

        // With < 4 workers the parallel ratio is recorded, not floored:
        // the fixture (1 worker, 1.57x) passes. With >= 4 workers the
        // 3x gate arms.
        validate_kernel_snapshot(&minimal_kernel_snapshot()).unwrap();
        let wide = resealed(
            minimal_kernel_snapshot(),
            "parallel",
            kernel_engine(4.4e5, Some(51)).with("workers", 8u64),
        );
        assert!(
            validate_kernel_snapshot(&wide).unwrap_err().contains("parallel_speedup"),
            "8 workers at 1.57x must trip the 3x gate"
        );
        let wide_fast = resealed(
            resealed(
                minimal_kernel_snapshot(),
                "parallel",
                kernel_engine(1.5e5, Some(51)).with("workers", 8u64),
            ),
            "parallel_speedup",
            Json::Num(4.6),
        );
        validate_kernel_snapshot(&wide_fast).unwrap();
        let zero_workers = resealed(
            minimal_kernel_snapshot(),
            "parallel",
            kernel_engine(4.4e5, Some(51)).with("workers", 0u64),
        );
        assert!(validate_kernel_snapshot(&zero_workers).is_err(), "workers must be >= 1");

        // The active-fraction evidence must exist and be non-empty.
        let no_frontier = resealed(minimal_kernel_snapshot(), "frontier", Json::Null);
        assert!(validate_kernel_snapshot(&no_frontier).is_err());
        let empty_hist = resealed(
            minimal_kernel_snapshot(),
            "frontier",
            Json::object()
                .with("active_agent_steps", 123u64)
                .with("active_pct", HistogramSnapshot::default().to_json()),
        );
        assert!(
            validate_kernel_snapshot(&empty_hist).unwrap_err().contains("active_pct"),
            "empty histogram must fail"
        );
    }

    #[test]
    fn kernel_regression_gate_compares_speedups() {
        let baseline = minimal_kernel_snapshot();
        validate_kernel_regression(&baseline, &minimal_kernel_snapshot()).unwrap();

        // Better or mildly worse speedups pass...
        let better = resealed(minimal_kernel_snapshot(), "speedup", Json::Num(2.5));
        validate_kernel_regression(&baseline, &better).unwrap();
        let mild = resealed(minimal_kernel_snapshot(), "speedup", Json::Num(2.09 * 0.75));
        validate_kernel_regression(&baseline, &mild).unwrap();

        // ...a > 30 % loss of the ratio fails.
        let regressed = resealed(minimal_kernel_snapshot(), "speedup", Json::Num(2.09 * 0.6));
        let err = validate_kernel_regression(&baseline, &regressed).unwrap_err();
        assert!(err.contains("regressed"), "got: {err}");

        // The frontier ratio is pinned by the same relative floor (a
        // fresh 1.05x still clears the absolute >= 1 gate, but loses
        // more than 30 % of the baseline's 1.60x).
        let frontier_rot =
            resealed(minimal_kernel_snapshot(), "frontier_speedup", Json::Num(1.05));
        let err = validate_kernel_regression(&baseline, &frontier_rot).unwrap_err();
        assert!(err.contains("frontier_speedup"), "got: {err}");

        // The sliced series is pinned by the same relative floor even
        // though its absolute ratio sits below 1.
        let sliced_rot =
            resealed(minimal_kernel_snapshot(), "sliced_speedup", Json::Num(0.45 * 0.6));
        let err = validate_kernel_regression(&baseline, &sliced_rot).unwrap_err();
        assert!(err.contains("sliced_speedup"), "got: {err}");

        // An invalid party is named in the error.
        let broken = resealed(minimal_kernel_snapshot(), "schema", "other/v0".into());
        assert!(validate_kernel_regression(&broken, &baseline).unwrap_err().starts_with("baseline"));
        assert!(validate_kernel_regression(&baseline, &broken).unwrap_err().starts_with("fresh"));
    }

    #[test]
    fn fitness_snapshot_validates_and_gates() {
        validate_fitness_snapshot(&minimal_fitness_snapshot()).unwrap();

        let slower = resealed(minimal_fitness_snapshot(), "speedup", Json::Num(0.8));
        assert!(validate_fitness_snapshot(&slower).is_err(), "slower-than-baseline must fail");

        let drifted = resealed(minimal_fitness_snapshot(), "identical_reports", Json::Bool(false));
        assert!(validate_fitness_snapshot(&drifted).is_err(), "changed results must fail");

        let wrong = resealed(minimal_fitness_snapshot(), "schema", "other/v0".into());
        assert!(validate_fitness_snapshot(&wrong).is_err());

        let gap = resealed(
            minimal_fitness_snapshot(),
            "selection",
            Json::object().with("elapsed_us", 1e5),
        );
        assert!(validate_fitness_snapshot(&gap).is_err());

        let mut tampered = minimal_fitness_snapshot();
        tampered.set("speedup", 99.0); // edited without re-sealing
        assert!(
            validate_fitness_snapshot(&tampered).unwrap_err().contains("checksum"),
            "unsealed edits trip the checksum gate"
        );
    }

    #[test]
    fn bench_snapshot_validates_and_catches_gaps() {
        validate_bench_snapshot(&minimal_snapshot()).unwrap();

        let wrong_schema = resealed(minimal_snapshot(), "schema", "other/v0".into());
        assert!(validate_bench_snapshot(&wrong_schema).is_err());

        let base = minimal_snapshot();
        let Json::Arr(entries) = base.get("t_comm").unwrap().clone() else { unreachable!() };
        let missing_k = resealed(base, "t_comm", Json::Arr(entries[..2].to_vec()));
        assert!(validate_bench_snapshot(&missing_k).is_err());

        let empty_series = resealed(
            minimal_snapshot(),
            "ga",
            Json::object().with("series", Json::Arr(Vec::new())),
        );
        assert!(validate_bench_snapshot(&empty_series).is_err());

        let mut tampered = minimal_snapshot();
        tampered.set("fitness", Json::object().with("evals_per_sec", 1e9));
        assert!(
            validate_bench_snapshot(&tampered).unwrap_err().contains("checksum"),
            "unsealed edits trip the checksum gate"
        );
    }
}

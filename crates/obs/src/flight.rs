//! The flight recorder: per-thread lock-free ring buffers holding the
//! most recent observability records, dumped as a sealed
//! `a2a-obs/flight/v1` document when something goes wrong — so every
//! crash, injected fault or failed checkpoint write leaves a black box.
//!
//! # Design
//!
//! Each thread owns one fixed-capacity ring of [`Slot`]s; a record is
//! four relaxed atomic stores into the owner's ring (the owning thread
//! is the only writer, so no CAS loop and no lock — "lock-free" here is
//! the strong, wait-free kind). The ring overwrites its oldest entry
//! once full, keeping the last `capacity` records per thread. Event
//! names are interned to small ids once per distinct `&'static str`, so
//! the steady-state record path never allocates. Disabled (the
//! default), [`record`] is a single relaxed atomic load and an untaken
//! branch — the same fast-path discipline as [`crate::enabled`], and
//! the `obs_benches` suite holds it to ≤ 1 ns per call.
//!
//! Rings are registered in a process-global list and kept alive by
//! `Arc`, so a dump sees the final records of threads that have already
//! exited (a worker that panicked, say). Readers snapshot a ring while
//! its owner may still be writing; each slot is read word-by-word, so a
//! record racing the dump may decode torn — acceptable for a black box,
//! and impossible in the quiescent states dumps actually happen in
//! (panic hooks, fault sites, checkpoint failures).
//!
//! # Dump format
//!
//! A dump is a JSONL stream: line 1 is the sealed header
//! (`schema: "a2a-obs/flight/v1"`, reason, counts, FNV checksum —
//! see [`crate::schema::validate_flight`]), each following line one
//! record in the `a2a-obs/events/v1` line shape (`t_ms`, `level`,
//! `event`, optional `worker`, `fields`), globally ordered by
//! timestamp. Files are published with the same `.partial` → rename
//! discipline as [`crate::JsonlSink`], so a reader never sees a
//! half-written dump at the final path.
//!
//! # Quick start
//!
//! ```
//! use a2a_obs::flight;
//!
//! flight::enable();
//! flight::mark("demo.step", 1, 2);
//! let text = flight::dump_string("demo");
//! assert!(text.starts_with("{\"schema\":\"a2a-obs/flight/v1\""));
//! flight::disable();
//! ```
//!
//! Binaries normally never call this module directly: `A2A_FLIGHT=DIR`
//! (via [`crate::init_from_env`]) enables the recorder, points dumps at
//! `DIR` and installs the panic hook; [`crate::fault`] sites and the
//! `a2a-run` checkpoint path call [`dump`] on their own.

use crate::json::Json;
use crate::schema::FLIGHT_SCHEMA;
use std::cell::OnceCell;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Default per-thread ring capacity (records kept per thread).
pub const DEFAULT_CAPACITY: usize = 1024;

/// Whether the recorder is on — the disabled fast-path gate.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Capacity used for rings created after the last [`set_capacity`].
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// Every ring ever created, kept alive past thread exit.
static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();

/// Where [`dump`] writes (set by `A2A_FLIGHT` or [`set_dump_dir`]).
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Monotone dump counter, so successive dumps never collide on a name.
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// What kind of moment a record captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// An [`crate::Event`] passing through [`crate::emit`].
    Event = 0,
    /// A [`crate::Span`] opening (`a` = span id, `b` = parent id).
    SpanEnter = 1,
    /// A [`crate::Span`] closing (`a` = span id, `b` = elapsed µs).
    SpanExit = 2,
    /// An injected fault firing (`a` = occurrence index).
    Fault = 3,
    /// A free-form caller mark (see [`mark`]).
    Mark = 4,
}

impl Kind {
    /// The stable lowercase name used in dump lines.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Event => "event",
            Self::SpanEnter => "span_enter",
            Self::SpanExit => "span_exit",
            Self::Fault => "fault",
            Self::Mark => "mark",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => Self::SpanEnter,
            2 => Self::SpanExit,
            3 => Self::Fault,
            4 => Self::Mark,
            _ => Self::Event,
        }
    }
}

/// One ring entry: timestamp, packed metadata and two payload words,
/// each an independent atomic so the recorder stays within
/// `#![forbid(unsafe_code)]`.
#[derive(Debug)]
struct Slot {
    t_ns: AtomicU64,
    /// Bits 0‥8 [`Kind`], bits 8‥40 interned name id, bits 40‥56
    /// worker id + 1 (0 = untagged).
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

fn pack_meta(kind: Kind, name_id: u32, worker: Option<usize>) -> u64 {
    let w = worker.map_or(0u64, |w| (w as u64 + 1).min((1 << 16) - 1));
    (kind as u64) | (u64::from(name_id) << 8) | (w << 40)
}

/// One thread's ring. The owning thread is the only writer; `head`
/// counts records ever written (so `head − capacity` is the oldest
/// still retained).
#[derive(Debug)]
struct ThreadRing {
    ordinal: u64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn new(ordinal: u64, capacity: usize) -> Self {
        let slots = (0..capacity.max(16))
            .map(|_| Slot {
                t_ns: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            })
            .collect();
        Self { ordinal, head: AtomicU64::new(0), slots }
    }

    fn push(&self, t_ns: u64, meta: u64, a: u64, b: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        // Release-publish the slot words before the head advance that
        // makes them visible to a dumping reader.
        self.head.store(head + 1, Ordering::Release);
    }
}

fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's ring, created on first record while enabled.
    static RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
}

/// The name interner: `&'static str` → dense id, plus the reverse
/// table dumps decode through.
#[derive(Debug, Default)]
struct Interner {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

static NAMES: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    NAMES.get_or_init(|| RwLock::new(Interner::default()))
}

fn intern(name: &'static str) -> u32 {
    if let Some(&id) = interner().read().expect("interner lock").ids.get(name) {
        return id;
    }
    let mut w = interner().write().expect("interner lock");
    if let Some(&id) = w.ids.get(name) {
        return id;
    }
    let id = w.names.len() as u32;
    w.names.push(name);
    w.ids.insert(name, id);
    id
}

fn name_of(id: u32) -> String {
    interner()
        .read()
        .expect("interner lock")
        .names
        .get(id as usize)
        .map_or_else(|| format!("?{id}"), |n| (*n).to_string())
}

/// Whether the recorder is on. One relaxed atomic load — the branch
/// every [`record`] call takes on the disabled path.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on. Rings are created lazily per thread on the
/// first record.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off (existing ring contents stay dumpable).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Sets the per-thread ring capacity for rings created from now on
/// (clamped to ≥ 16; existing rings keep their size).
pub fn set_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(16), Ordering::Relaxed);
}

/// Records one moment into the calling thread's ring. A no-op costing
/// one relaxed load when the recorder is disabled; ~tens of ns when
/// enabled (clock read + four stores, plus the interning lookup).
#[inline]
pub fn record(kind: Kind, name: &'static str, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    record_slow(kind, name, a, b);
}

#[cold]
fn record_slow(kind: Kind, name: &'static str, a: u64, b: u64) {
    let t_ns = crate::clock_ns();
    let meta = pack_meta(kind, intern(name), crate::worker_id());
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing::new(
                crate::thread_ordinal(),
                CAPACITY.load(Ordering::Relaxed),
            ));
            rings().lock().expect("flight ring registry lock").push(Arc::clone(&ring));
            ring
        });
        ring.push(t_ns, meta, a, b);
    });
}

/// Records a caller-defined [`Kind::Mark`] with two payload words.
#[inline]
pub fn mark(name: &'static str, a: u64, b: u64) {
    record(Kind::Mark, name, a, b);
}

/// Records an event passing through [`crate::emit`]: the first two
/// numeric field values become the payload words (rounded to integers;
/// strings and later fields are dropped — the black box keeps shapes,
/// not payload fidelity).
pub(crate) fn note_event(event: &crate::Event) {
    if !enabled() {
        return;
    }
    let mut nums = event.fields.iter().filter_map(|(_, v)| match v {
        crate::Value::U64(n) => Some(*n),
        crate::Value::I64(n) => Some(*n as u64),
        crate::Value::F64(n) => Some(*n as u64),
        crate::Value::Bool(b) => Some(u64::from(*b)),
        crate::Value::Str(_) => None,
    });
    let a = nums.next().unwrap_or(0);
    let b = nums.next().unwrap_or(0);
    record_slow(Kind::Event, event.name, a, b);
}

/// One decoded ring record, as replayed from a dump or a live snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRecord {
    /// Milliseconds since the process clock origin.
    pub t_ms: f64,
    /// Interned record name (event/span/site name).
    pub name: String,
    /// Record kind, as [`Kind::as_str`].
    pub kind: String,
    /// Position in the owning thread's record sequence (0-based).
    pub seq: u64,
    /// Owning thread's ordinal (see [`crate::thread_ordinal`]).
    pub thread: u64,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Worker tag, when the recording thread had one.
    pub worker: Option<u64>,
}

/// Decodes every ring's retained records, globally ordered by
/// timestamp (ties broken by thread then sequence).
#[must_use]
pub fn snapshot_records() -> Vec<ReplayRecord> {
    let mut out = Vec::new();
    for ring in rings().lock().expect("flight ring registry lock").iter() {
        let head = ring.head.load(Ordering::Acquire);
        let cap = ring.slots.len() as u64;
        let retained = head.min(cap);
        for seq in (head - retained)..head {
            let slot = &ring.slots[(seq % cap) as usize];
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let kind = Kind::from_u8((meta & 0xFF) as u8);
            let name_id = ((meta >> 8) & 0xFFFF_FFFF) as u32;
            let w = (meta >> 40) & 0xFFFF;
            out.push(ReplayRecord {
                t_ms: t_ns as f64 / 1e6,
                name: name_of(name_id),
                kind: kind.as_str().to_string(),
                seq,
                thread: ring.ordinal,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
                worker: (w > 0).then(|| w - 1),
            });
        }
    }
    out.sort_by(|x, y| {
        x.t_ms.total_cmp(&y.t_ms).then(x.thread.cmp(&y.thread)).then(x.seq.cmp(&y.seq))
    });
    out
}

/// Total records dropped by overwrite across all rings so far.
#[must_use]
pub fn dropped_records() -> u64 {
    rings()
        .lock()
        .expect("flight ring registry lock")
        .iter()
        .map(|r| r.head.load(Ordering::Relaxed).saturating_sub(r.slots.len() as u64))
        .sum()
}

fn record_line(r: &ReplayRecord) -> Json {
    let mut doc = Json::object()
        .with("t_ms", (r.t_ms * 1000.0).round() / 1000.0)
        .with("level", "trace")
        .with("event", r.name.clone());
    if let Some(w) = r.worker {
        doc.set("worker", w);
    }
    doc.set(
        "fields",
        Json::object()
            .with("kind", r.kind.clone())
            .with("seq", r.seq)
            .with("thread", r.thread)
            .with("a", r.a)
            .with("b", r.b),
    );
    doc
}

/// Renders the current ring contents as a complete dump document:
/// sealed header line plus one `events/v1`-shaped line per record.
#[must_use]
pub fn dump_string(reason: &str) -> String {
    let records = snapshot_records();
    let threads = {
        let mut t: Vec<u64> = records.iter().map(|r| r.thread).collect();
        t.sort_unstable();
        t.dedup();
        t.len()
    };
    let header = crate::schema::seal(
        Json::object()
            .with("schema", FLIGHT_SCHEMA)
            .with("reason", reason)
            .with("t_ms", (crate::clock_ms() * 1000.0).round() / 1000.0)
            .with("threads", threads)
            .with("records", records.len())
            .with("dropped", dropped_records()),
    );
    let mut out = String::new();
    out.push_str(&header.to_string());
    out.push('\n');
    for r in &records {
        out.push_str(&record_line(r).to_string());
        out.push('\n');
    }
    out
}

/// Writes a dump to `path` via the shared `.partial` → rename
/// publication (see [`crate::publish_via_partial`]).
///
/// # Errors
///
/// Propagates IO errors; on error a `.partial` sibling may remain.
pub fn dump_to(path: impl AsRef<Path>, reason: &str) -> std::io::Result<()> {
    crate::sink::publish_via_partial(path, dump_string(reason).as_bytes())
}

/// Points [`dump`] at `dir` (created on first dump).
pub fn set_dump_dir(dir: impl Into<PathBuf>) {
    *DUMP_DIR.lock().expect("flight dump dir lock") = Some(dir.into());
}

/// The directory [`dump`] writes into, if configured.
#[must_use]
pub fn dump_dir() -> Option<PathBuf> {
    DUMP_DIR.lock().expect("flight dump dir lock").clone()
}

/// Dumps to the configured directory as
/// `flight-<pid>-<n>-<sanitised reason>.jsonl`, returning the
/// published path. The PID keeps concurrent processes pointed at one
/// shared dump directory (the CI `flight/` convention) from clobbering
/// each other's dumps; `n` separates successive dumps within a
/// process. `None` when the recorder is disabled, no directory is
/// configured, or the write fails — a flight dump must never take the
/// process down harder than it already is.
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let dir = dump_dir()?;
    let _ = std::fs::create_dir_all(&dir);
    let n = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let slug: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .take(48)
        .collect();
    let path = dir.join(format!("flight-{}-{n}-{slug}.jsonl", std::process::id()));
    dump_to(&path, reason).ok()?;
    Some(path)
}

/// Called from [`crate::fault`] when an injected fault fires: records
/// the firing (under the static shape name — the site string lands in
/// the dump's reason) and leaves a black box.
pub(crate) fn on_fault(site: &str, shape: &'static str) {
    if !enabled() {
        return;
    }
    record(Kind::Fault, shape, 0, 0);
    let _ = dump(&format!("fault-{site}"));
}

/// Installs a panic hook that dumps the rings (reason `"panic"`)
/// before delegating to the previous hook. Idempotent; the hook is a
/// no-op while the recorder is disabled, so tests that `catch_unwind`
/// expected panics are unaffected unless they opted in.
pub fn install_panic_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if enabled() {
            record(Kind::Mark, "flight.panic", 0, 0);
            let _ = dump("panic");
        }
        prev(info);
    }));
}

/// Parses an `A2A_FLIGHT` value and configures the recorder:
/// `0`/`off`/empty disables; anything else enables, installs the panic
/// hook, and is taken as the dump directory (`1`/`on` use the default
/// `flight/`). A `dir:capacity` suffix overrides the ring size.
pub(crate) fn init_from_spec(spec: &str) {
    let spec = spec.trim();
    if spec.is_empty() || spec == "0" || spec.eq_ignore_ascii_case("off") {
        return;
    }
    let (dir, capacity) = match spec.rsplit_once(':') {
        Some((d, cap)) => match cap.parse::<usize>() {
            Ok(c) => (d, Some(c)),
            Err(_) => (spec, None),
        },
        None => (spec, None),
    };
    if let Some(c) = capacity {
        set_capacity(c);
    }
    let dir = if dir == "1" || dir.eq_ignore_ascii_case("on") { "flight" } else { dir };
    set_dump_dir(dir);
    enable();
    install_panic_hook();
}

/// Parses a dump produced by [`dump_string`] back into its header and
/// records (the replay path of the black box).
///
/// # Errors
///
/// A message naming the malformed line. The checksum is *not*
/// re-verified here — use [`crate::schema::validate_flight`] first
/// when trust matters.
pub fn parse_dump(content: &str) -> Result<(Json, Vec<ReplayRecord>), String> {
    let mut lines = content.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or("empty flight dump")?;
    let header = crate::json::parse(header_line)?;
    let mut records = Vec::new();
    for line in lines {
        let Ok(doc) = crate::json::parse(line) else { continue };
        let fields = doc.get("fields").cloned().unwrap_or_else(Json::object);
        let num = |d: &Json, k: &str| d.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        records.push(ReplayRecord {
            t_ms: num(&doc, "t_ms"),
            name: doc.get("event").and_then(Json::as_str).unwrap_or("?").to_string(),
            kind: fields.get("kind").and_then(Json::as_str).unwrap_or("event").to_string(),
            seq: num(&fields, "seq") as u64,
            thread: num(&fields, "thread") as u64,
            a: num(&fields, "a") as u64,
            b: num(&fields, "b") as u64,
            worker: doc.get("worker").and_then(Json::as_f64).map(|w| w as u64),
        });
    }
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recorder state is process-global; tests that enable serialise.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = GUARD.lock().unwrap();
        disable();
        let before = snapshot_records().len();
        record(Kind::Mark, "flight.test.inert", 1, 2);
        assert_eq!(snapshot_records().len(), before);
    }

    #[test]
    fn records_round_trip_through_dump() {
        let _g = GUARD.lock().unwrap();
        enable();
        mark("flight.test.rt", 7, 9);
        let text = dump_string("test");
        disable();
        let (header, records) = parse_dump(&text).unwrap();
        assert_eq!(header.get("schema").and_then(Json::as_str), Some(FLIGHT_SCHEMA));
        assert_eq!(header.get("reason").and_then(Json::as_str), Some("test"));
        let mine = records.iter().find(|r| r.name == "flight.test.rt").unwrap();
        assert_eq!((mine.a, mine.b), (7, 9));
        assert_eq!(mine.kind, "mark");
    }

    #[test]
    fn ring_overwrites_oldest() {
        let _g = GUARD.lock().unwrap();
        enable();
        // Far more records than any ring capacity: the ring must retain
        // the newest and report drops.
        for i in 0..(DEFAULT_CAPACITY as u64 + 64) {
            mark("flight.test.wrap", i, 0);
        }
        let records = snapshot_records();
        disable();
        let newest = records
            .iter()
            .filter(|r| r.name == "flight.test.wrap")
            .map(|r| r.a)
            .max()
            .unwrap();
        assert_eq!(newest, DEFAULT_CAPACITY as u64 + 63, "newest record retained");
        assert!(dropped_records() > 0, "overwrites are counted");
    }

    #[test]
    fn other_threads_records_survive_thread_exit() {
        let _g = GUARD.lock().unwrap();
        enable();
        std::thread::spawn(|| mark("flight.test.dead_thread", 5, 0))
            .join()
            .unwrap();
        let records = snapshot_records();
        disable();
        assert!(records.iter().any(|r| r.name == "flight.test.dead_thread" && r.a == 5));
    }

    #[test]
    fn spec_grammar() {
        let _g = GUARD.lock().unwrap();
        init_from_spec("");
        init_from_spec("off");
        init_from_spec("0");
        assert!(!enabled(), "off specs leave the recorder disabled");
        init_from_spec("/tmp/a2a_flight_spec_test:128");
        assert!(enabled());
        assert_eq!(dump_dir().unwrap(), PathBuf::from("/tmp/a2a_flight_spec_test"));
        disable();
    }
}

//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded schedule of faults keyed by *site* — a
//! dot-separated string naming an instrumented code location (e.g.
//! `ga.pool.item`, `run.checkpoint.write`, `run.generation`). Each time
//! an instrumented site is reached it asks the armed plan whether this
//! particular occurrence should fault; the decision is a pure function
//! of `(plan seed, site, occurrence index)`, so a given plan injects the
//! same faults at the same points on every run — the property the
//! kill/resume equivalence suite relies on.
//!
//! Three fault shapes are provided, matching the sites the workspace
//! instruments:
//!
//! * [`panic_point`] — panics (a simulated worker crash; the caller's
//!   `catch_unwind` containment is what is under test);
//! * [`io_error`] — returns `Err(std::io::Error)` (a simulated disk
//!   fault on a checkpoint or artifact write);
//! * [`should_kill`] — returns `true` (a simulated process kill; the
//!   harness stops mid-run as if SIGKILLed between generations).
//!
//! # Cost and gating
//!
//! Disarmed (the default), every probe is a single relaxed atomic load —
//! the same fast path discipline as [`crate::metrics_enabled`]. Plans
//! are armed programmatically with [`arm`] (chaos tests) or — only when
//! the crate is built with the `fault-inject` feature — from the
//! `A2A_FAULT` environment variable via [`crate::init_from_env`], so
//! production binaries cannot be fault-injected by environment unless
//! deliberately compiled for chaos runs.
//!
//! The `A2A_FAULT` grammar is a comma-separated list of
//! `site:rate[:max]` rules plus an optional `seed=N` item, e.g.
//! `A2A_FAULT="seed=7,ga.pool.item:0.05:3,run.checkpoint.write:0.5"`.
//! [`FaultPlan::to_spec`] renders a plan back into this grammar, and
//! the two round-trip exactly (`parse(plan.to_spec()) == plan`).
//!
//! # Instrumented sites
//!
//! | site                   | shape         | instrumented where                         |
//! |------------------------|---------------|--------------------------------------------|
//! | `ga.pool.item`         | [`panic_point`] | every multi-threaded worker-pool item    |
//! | `run.checkpoint.write` | [`io_error`]  | `CheckpointStore::save`                    |
//! | `run.generation`       | [`should_kill`] | every generation/epoch boundary          |
//! | `serve.request`        | [`io_error`]  | every accepted `a2a-serve` HTTP request    |
//! | `serve.job.step`       | [`panic_point`] | every `a2a-serve` job generation boundary |
//! | `serve.checkpoint`     | [`io_error`]  | `a2a-serve` manifest/result persistence    |
//!
//! e.g. `A2A_FAULT="seed=9,serve.request:0.01,serve.job.step:0.2:2,serve.checkpoint:0.5:4"`
//! chaos-tests the service layer: sporadic 500s, two simulated worker
//! crashes (retried with backoff), and flaky manifest writes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Whether any plan is armed (the disarmed fast-path gate).
static ARMED: AtomicBool = AtomicBool::new(false);

/// The armed plan plus per-site occurrence/fired counters.
static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);

#[derive(Debug)]
struct Active {
    plan: FaultPlan,
    /// Per-site `(occurrences seen, faults fired)`.
    counts: HashMap<String, (u64, u64)>,
}

/// One scheduled fault source: a site, a firing rate and a budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Instrumented site this rule applies to (exact match).
    pub site: String,
    /// Probability in `[0, 1]` that any one occurrence faults.
    pub rate: f64,
    /// Maximum number of faults this rule may fire (`u64::MAX` =
    /// unbounded).
    pub max: u64,
}

/// A deterministic, seeded schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the schedule; two plans with equal seeds and rules fault
    /// identically.
    pub seed: u64,
    /// The per-site rules (first exact match wins).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with a seed — add rules with [`FaultPlan::with`].
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self { seed, rules: Vec::new() }
    }

    /// Adds a rule: occurrences of `site` fault with probability `rate`,
    /// at most `max` times.
    #[must_use]
    pub fn with(mut self, site: &str, rate: f64, max: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate {rate} outside [0, 1]");
        self.rules.push(FaultRule { site: site.to_string(), rate, max });
        self
    }

    /// Whether occurrence `index` (0-based) of `site` faults under this
    /// plan — a pure function, exposed so tests can predict schedules.
    #[must_use]
    pub fn fires(&self, site: &str, index: u64) -> bool {
        let Some(rule) = self.rules.iter().find(|r| r.site == site) else {
            return false;
        };
        if rule.rate <= 0.0 {
            return false;
        }
        if rule.rate >= 1.0 {
            return true;
        }
        // SplitMix64 over (seed, site, index): deterministic, uniform,
        // independent across occurrences.
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in site.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        h ^= index.wrapping_mul(0xA24B_AED4_963E_E407);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < rule.rate
    }

    /// Parses the `A2A_FAULT` grammar (`seed=N` and `site:rate[:max]`
    /// items, comma-separated). Malformed items are ignored — the
    /// variable is advisory, like `A2A_LOG`.
    #[must_use]
    pub fn parse(spec: &str) -> Self {
        let mut plan = Self::default();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if let Some(seed) = item.strip_prefix("seed=") {
                if let Ok(s) = seed.parse() {
                    plan.seed = s;
                }
                continue;
            }
            let mut parts = item.split(':');
            let (Some(site), Some(rate)) = (parts.next(), parts.next()) else { continue };
            let Ok(rate) = rate.parse::<f64>() else { continue };
            if !(0.0..=1.0).contains(&rate) {
                continue;
            }
            let max = parts.next().and_then(|m| m.parse().ok()).unwrap_or(u64::MAX);
            plan.rules.push(FaultRule { site: site.to_string(), rate, max });
        }
        plan
    }

    /// Renders the plan in the `A2A_FAULT` grammar, the exact inverse of
    /// [`FaultPlan::parse`]: `FaultPlan::parse(&plan.to_spec()) == plan`
    /// for every plan whose rates survive `f64` printing (all parsed
    /// plans do). Lets a chaos harness hand a programmatic plan to a
    /// child process through the environment.
    #[must_use]
    pub fn to_spec(&self) -> String {
        let mut items = vec![format!("seed={}", self.seed)];
        for rule in &self.rules {
            if rule.max == u64::MAX {
                items.push(format!("{}:{}", rule.site, rule.rate));
            } else {
                items.push(format!("{}:{}:{}", rule.site, rule.rate, rule.max));
            }
        }
        items.join(",")
    }
}

/// Arms `plan` process-wide, resetting all site counters. Chaos tests
/// call this directly; `fault-inject` builds also arm from `A2A_FAULT`.
pub fn arm(plan: FaultPlan) {
    let mut active = ACTIVE.lock().expect("fault lock never poisoned");
    *active = Some(Active { plan, counts: HashMap::new() });
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms fault injection (the disarmed probe cost returns to one
/// relaxed atomic load).
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    *ACTIVE.lock().expect("fault lock never poisoned") = None;
}

/// Whether a plan is currently armed.
#[inline]
#[must_use]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Number of faults fired at `site` since the plan was armed.
#[must_use]
pub fn fired(site: &str) -> u64 {
    ACTIVE
        .lock()
        .expect("fault lock never poisoned")
        .as_ref()
        .and_then(|a| a.counts.get(site).map(|&(_, fired)| fired))
        .unwrap_or(0)
}

/// Core occurrence bookkeeping: records one occurrence of `site` and
/// decides whether it faults.
fn check(site: &str) -> bool {
    if !armed() {
        return false;
    }
    let mut active = ACTIVE.lock().expect("fault lock never poisoned");
    let Some(active) = active.as_mut() else { return false };
    let entry = active.counts.entry(site.to_string()).or_insert((0, 0));
    let index = entry.0;
    entry.0 += 1;
    let budget =
        active.plan.rules.iter().find(|r| r.site == site).map_or(0, |r| r.max);
    if entry.1 >= budget {
        return false;
    }
    if active.plan.fires(site, index) {
        entry.1 += 1;
        return true;
    }
    false
}

/// Panics when the armed plan schedules a fault at `site`; a no-op
/// otherwise. Place inside the containment (`catch_unwind`) under test.
pub fn panic_point(site: &str) {
    if check(site) {
        crate::event!(crate::Level::Warn, "fault.panic", "site" => site);
        crate::flight::on_fault(site, "fault.panic");
        panic!("injected fault: {site}");
    }
}

/// Simulates a disk fault: `Err(std::io::Error)` when the armed plan
/// schedules one at `site`, `Ok(())` otherwise.
///
/// # Errors
///
/// The injected error (kind `Other`, message naming the site).
pub fn io_error(site: &str) -> std::io::Result<()> {
    if check(site) {
        crate::event!(crate::Level::Warn, "fault.io", "site" => site);
        crate::flight::on_fault(site, "fault.io");
        return Err(std::io::Error::other(format!("injected IO fault: {site}")));
    }
    Ok(())
}

/// Simulates a process kill: `true` when the armed plan schedules one at
/// `site`. The caller is expected to stop abruptly without cleanup
/// beyond what a real kill would leave behind.
#[must_use]
pub fn should_kill(site: &str) -> bool {
    let kill = check(site);
    if kill {
        crate::event!(crate::Level::Warn, "fault.kill", "site" => site);
        crate::flight::on_fault(site, "fault.kill");
    }
    kill
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global plan is process-wide state shared by every test in
    /// this binary, so each test that arms must serialise.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_probes_never_fault() {
        let _g = GUARD.lock().unwrap();
        disarm();
        assert!(!should_kill("x.y"));
        panic_point("x.y");
        io_error("x.y").unwrap();
        assert_eq!(fired("x.y"), 0);
    }

    #[test]
    fn schedules_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::seeded(7).with("s", 0.3, u64::MAX);
        let b = FaultPlan::seeded(7).with("s", 0.3, u64::MAX);
        let c = FaultPlan::seeded(8).with("s", 0.3, u64::MAX);
        let hits = |p: &FaultPlan| (0..200).map(|i| p.fires("s", i)).collect::<Vec<_>>();
        assert_eq!(hits(&a), hits(&b));
        assert_ne!(hits(&a), hits(&c), "different seeds, different schedules");
        let n = hits(&a).iter().filter(|&&f| f).count();
        assert!((20..=100).contains(&n), "rate 0.3 over 200: {n}");
    }

    #[test]
    fn budget_bounds_fired_faults() {
        let _g = GUARD.lock().unwrap();
        arm(FaultPlan::seeded(1).with("k", 1.0, 2));
        let kills = (0..10).filter(|_| should_kill("k")).count();
        assert_eq!(kills, 2, "max = 2 caps a rate-1.0 rule");
        assert_eq!(fired("k"), 2);
        disarm();
    }

    #[test]
    fn io_and_panic_shapes_fire() {
        let _g = GUARD.lock().unwrap();
        arm(FaultPlan::seeded(3).with("w", 1.0, 1).with("p", 1.0, 1));
        assert!(io_error("w").is_err());
        io_error("w").unwrap();
        let caught = std::panic::catch_unwind(|| panic_point("p"));
        assert!(caught.is_err());
        disarm();
    }

    #[test]
    fn env_grammar_parses_and_ignores_noise() {
        let plan = FaultPlan::parse("seed=42, ga.pool.item:0.25:3 ,bad,x:2.0,w:1.0");
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan.rules,
            vec![
                FaultRule { site: "ga.pool.item".into(), rate: 0.25, max: 3 },
                FaultRule { site: "w".into(), rate: 1.0, max: u64::MAX },
            ]
        );
    }

    #[test]
    fn env_grammar_round_trips_through_to_spec() {
        // The serve sites ride the same grammar as every other site; a
        // plan covering all three (plus the PR-4 sites) must survive
        // render → parse bit-identically, budgets included.
        let plan = FaultPlan::seeded(9)
            .with("serve.request", 0.01, u64::MAX)
            .with("serve.job.step", 0.2, 2)
            .with("serve.checkpoint", 0.5, 4)
            .with("ga.pool.item", 0.05, 3)
            .with("run.checkpoint.write", 1.0, u64::MAX);
        let spec = plan.to_spec();
        assert_eq!(FaultPlan::parse(&spec), plan, "spec was: {spec}");
        // And the rendered grammar is exactly what the doc comment
        // promises: seed first, site:rate[:max] items.
        assert!(spec.starts_with("seed=9,serve.request:0.01,serve.job.step:0.2:2"), "{spec}");
        // A second round trip is a fixed point.
        assert_eq!(FaultPlan::parse(&spec).to_spec(), spec);
    }

    #[test]
    fn serve_sites_schedule_deterministically() {
        let plan = FaultPlan::seeded(77)
            .with("serve.request", 0.3, u64::MAX)
            .with("serve.job.step", 0.3, u64::MAX);
        let req: Vec<bool> = (0..64).map(|i| plan.fires("serve.request", i)).collect();
        let step: Vec<bool> = (0..64).map(|i| plan.fires("serve.job.step", i)).collect();
        assert_ne!(req, step, "sites hash independently");
        assert_eq!(req, (0..64).map(|i| plan.fires("serve.request", i)).collect::<Vec<_>>());
    }

    #[test]
    fn unknown_sites_never_fire() {
        let plan = FaultPlan::seeded(5).with("a", 1.0, u64::MAX);
        assert!(!plan.fires("b", 0));
    }
}

//! `a2a-obs` — structured tracing and metrics for the reproduction,
//! hand-rolled (the build environment has no registry access, so no
//! external `tracing`/`metrics` crates).
//!
//! The crate provides three cooperating layers:
//!
//! * **Events & spans** — [`Event`] records (a dot-separated name, a
//!   [`Level`], millisecond timestamp, optional worker id and typed
//!   key/value [`Value`] fields) emitted through the [`event!`] macro,
//!   and [`Span`] guards that time a region and emit its duration.
//! * **Metrics registry** — a process-global, thread-safe [`Registry`]
//!   of named [`Counter`]s, [`Gauge`]s and log-scale [`Histogram`]s
//!   (power-of-two buckets, lock-free atomic updates, associative
//!   merge), snapshotted to JSON for the `BENCH_obs.json` trajectory.
//! * **Sinks** — pluggable [`Sink`] backends: a human-readable
//!   [`StderrSink`] whose verbosity follows the `A2A_LOG` environment
//!   variable, and a [`JsonlSink`] writing one schema-validated JSON
//!   object per line (see [`schema`]).
//!
//! # Overhead
//!
//! With `A2A_LOG` unset and no sink attached the whole pipeline is
//! disabled: [`enabled`] is a single relaxed atomic load, the [`event!`]
//! macro constructs nothing, and [`metrics_enabled`] gates every
//! registry update the simulation layers perform. The
//! `obs_benches` criterion bench in `a2a-bench` verifies the disabled
//! fast path costs ~1 ns per call site.
//!
//! # Quick start
//!
//! ```
//! use a2a_obs as obs;
//!
//! // Typically done once by the binary: obs::init_from_env() honours
//! // A2A_LOG=error|warn|info|debug|trace (optionally `target=level`
//! // prefixes, e.g. A2A_LOG="info,ga=debug").
//! obs::event!(obs::Level::Info, "demo.start", "k" => 16u64);
//! let timer = obs::Span::enter("demo.work");
//! // ... work ...
//! drop(timer); // emits demo.work with elapsed_us when enabled
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod event;
pub mod fault;
pub mod flight;
pub mod json;
mod level;
mod registry;
pub mod schema;
mod sink;
mod span;
pub mod trace;
mod value;

pub use event::{emit, flush_all, set_worker_id, worker_id, Event};
pub use level::Level;
pub use registry::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot,
};
pub use sink::{
    atomic_write, attach_sink, attached_sinks, finalize_all, publish_via_partial, JsonlSink,
    MemorySink, Sink, StderrSink,
};
pub use span::Span;
pub use value::Value;

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum level any sink currently wants, as a `u8` (`Level::Off` = 0).
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Whether the simulation/GA layers should record into the registry.
static METRICS: AtomicBool = AtomicBool::new(false);

/// Per-target (`name` prefix) level overrides parsed from `A2A_LOG`.
static FILTERS: OnceLock<Mutex<Vec<(String, Level)>>> = OnceLock::new();

/// Process-relative clock origin for event timestamps.
static CLOCK: OnceLock<Instant> = OnceLock::new();

/// Milliseconds since the first observability call of the process.
#[must_use]
pub fn clock_ms() -> f64 {
    let origin = CLOCK.get_or_init(Instant::now);
    origin.elapsed().as_secs_f64() * 1e3
}

/// Nanoseconds since the first observability call of the process
/// (saturating after ~584 years) — the flight recorder's timestamp.
#[must_use]
pub fn clock_ns() -> u64 {
    let origin = CLOCK.get_or_init(Instant::now);
    origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// A small dense ordinal identifying the calling thread (assigned on
/// first use, never reused). Flight-recorder records and captured
/// spans carry it so per-thread interleavings stay attributable
/// without OS thread ids.
#[must_use]
pub fn thread_ordinal() -> u64 {
    use std::cell::Cell;
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    thread_local! {
        static ORDINAL: Cell<Option<u64>> = const { Cell::new(None) };
    }
    ORDINAL.with(|cell| match cell.get() {
        Some(o) => o,
        None => {
            let o = NEXT.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(o));
            o
        }
    })
}

/// The fast path: would an event at `level` be dispatched at all?
///
/// A single relaxed atomic load — call freely from hot loops.
#[inline]
#[must_use]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Whether an event named `name` at `level` passes the `A2A_LOG`
/// prefix filters (e.g. `A2A_LOG="warn,ga=debug"` keeps `ga.*` debug
/// events while everything else needs warn or better).
#[must_use]
pub fn enabled_for(level: Level, name: &str) -> bool {
    if !enabled(level) {
        return false;
    }
    let Some(filters) = FILTERS.get() else { return true };
    let filters = filters.lock().expect("filter lock never poisoned");
    let mut best: Option<(usize, Level)> = None;
    for (prefix, lvl) in filters.iter() {
        if prefix.is_empty() || name.starts_with(prefix.as_str()) {
            let rank = prefix.len();
            if best.is_none_or(|(b, _)| rank >= b) {
                best = Some((rank, *lvl));
            }
        }
    }
    match best {
        Some((_, lvl)) => level <= lvl,
        None => true,
    }
}

/// Whether the registry-updating layers (kernel, GA) should record
/// metrics. One relaxed atomic load; off by default.
#[inline]
#[must_use]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// Turns registry recording on or off explicitly (sinks and
/// [`init_from_env`] also turn it on).
pub fn set_metrics(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
}

/// Raises the dispatch ceiling to at least `level` (never lowers it:
/// several sinks may be attached with different verbosities).
pub fn raise_level(level: Level) {
    MAX_LEVEL.fetch_max(level as u8, Ordering::Relaxed);
    if level >= Level::Info {
        set_metrics(true);
    }
}

/// Forces the dispatch ceiling to exactly `level` (tests and `--quiet`).
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current dispatch ceiling.
#[must_use]
pub fn max_level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Parses `A2A_LOG` and, when it enables anything, attaches a
/// [`StderrSink`] at the requested verbosity and enables metrics.
///
/// The grammar is a comma-separated list of `level` or `prefix=level`
/// items: `A2A_LOG=debug`, `A2A_LOG=info,ga=trace`. Unknown levels are
/// ignored (the variable is advisory, not load-bearing). Idempotent:
/// only the first call attaches a sink.
pub fn init_from_env() {
    static DONE: AtomicBool = AtomicBool::new(false);
    if DONE.swap(true, Ordering::SeqCst) {
        return;
    }
    // Chaos builds may arm fault injection from the environment;
    // production builds compile the probe sites but ignore A2A_FAULT.
    #[cfg(feature = "fault-inject")]
    if let Ok(spec) = std::env::var("A2A_FAULT") {
        let plan = fault::FaultPlan::parse(&spec);
        if !plan.rules.is_empty() {
            fault::arm(plan);
        }
    }
    // A2A_FLIGHT=DIR[:capacity] (or `1`/`on`) enables the flight
    // recorder, points dumps at DIR and installs the panic hook.
    if let Ok(spec) = std::env::var("A2A_FLIGHT") {
        flight::init_from_spec(&spec);
    }
    let Ok(spec) = std::env::var("A2A_LOG") else { return };
    let (default_level, filters) = level::parse_spec(&spec);
    if !filters.is_empty() {
        let store = FILTERS.get_or_init(|| Mutex::new(Vec::new()));
        store.lock().expect("filter lock never poisoned").extend(filters.clone());
    }
    let ceiling = filters
        .iter()
        .map(|&(_, l)| l)
        .chain(std::iter::once(default_level))
        .max()
        .unwrap_or(Level::Off);
    if ceiling > Level::Off {
        attach_sink(std::sync::Arc::new(StderrSink::new(ceiling)));
    }
}

/// Emits an [`Event`] if its level is enabled — or if the
/// [`flight`] recorder is on, so the black box sees events even when
/// no sink wants them — constructing nothing otherwise (two relaxed
/// loads on the fully-disabled path).
///
/// ```
/// a2a_obs::event!(a2a_obs::Level::Debug, "kernel.run",
///     "t_comm" => 42u64, "agents" => 16u64);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $crate::enabled($level) || $crate::flight::enabled() {
            #[allow(unused_mut)]
            let mut __e = $crate::Event::new($level, $name);
            $( __e = __e.field($k, $v); )*
            $crate::emit(__e);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_until_raised() {
        // Off is the floor; raising is monotone.
        assert!(!enabled(Level::Trace) || max_level() >= Level::Trace);
        raise_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(metrics_enabled() || max_level() < Level::Info);
    }

    #[test]
    fn clock_is_monotone() {
        let a = clock_ms();
        let b = clock_ms();
        assert!(b >= a);
    }
}

//! Typed field values carried by events.

use crate::json::Json;
use std::fmt;

/// A typed event-field value. Small by design: everything the
/// simulation and GA layers report is a scalar or a short string.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, times in steps).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Floating point (fitness, milliseconds).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short free-form text (labels, genome digits).
    Str(String),
}

impl Value {
    /// The JSON form used by [`crate::JsonlSink`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Self::U64(v) => Json::from(*v),
            Self::I64(v) => Json::from(*v),
            Self::F64(v) => Json::from(*v),
            Self::Bool(v) => Json::Bool(*v),
            Self::Str(v) => Json::Str(v.clone()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::U64(v) => write!(f, "{v}"),
            Self::I64(v) => write!(f, "{v}"),
            Self::F64(v) => write!(f, "{v:.3}"),
            Self::Bool(v) => write!(f, "{v}"),
            Self::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Self::I64(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_kind() {
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-3i32), Value::I64(-3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }

    #[test]
    fn json_round_trips_scalars() {
        for v in [Value::U64(7), Value::F64(1.5), Value::Bool(false)] {
            let j = v.to_json();
            let back = crate::json::parse(&j.to_string()).unwrap();
            assert_eq!(j, back);
        }
    }
}

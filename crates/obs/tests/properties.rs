//! Property tests: histogram merge algebra and JSONL round-trips.

use a2a_obs::json::{parse, Json};
use a2a_obs::{Event, HistogramSnapshot, Level, Value};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Samples spanning the first 32 log buckets (the realistic range of
/// step counts and microsecond timings; JSON numbers are `f64`, so
/// sums must stay inside the exactly-representable 2⁵³ range).
fn samples(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let magnitude = rng.random_range(32..64u32);
            rng.random_range(0..=u64::MAX) >> magnitude
        })
        .collect()
}

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c): merging is associative, so
    /// per-worker partial histograms can be combined in any join order.
    #[test]
    fn histogram_merge_is_associative(sa in any::<u64>(), sb in any::<u64>(), sc in any::<u64>(),
                                      na in 0usize..50, nb in 0usize..50, nc in 0usize..50) {
        let (a, b, c) = (hist_of(&samples(sa, na)), hist_of(&samples(sb, nb)), hist_of(&samples(sc, nc)));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// a ⊔ b == b ⊔ a and the empty snapshot is the identity.
    #[test]
    fn histogram_merge_is_commutative_with_identity(sa in any::<u64>(), sb in any::<u64>(),
                                                    na in 0usize..50, nb in 0usize..50) {
        let (a, b) = (hist_of(&samples(sa, na)), hist_of(&samples(sb, nb)));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut with_identity = a.clone();
        with_identity.merge(&HistogramSnapshot::default());
        prop_assert_eq!(with_identity, a);
    }

    /// Merging equals recording the concatenated sample stream.
    #[test]
    fn merge_equals_concatenation(sa in any::<u64>(), sb in any::<u64>(),
                                  na in 0usize..50, nb in 0usize..50) {
        let (va, vb) = (samples(sa, na), samples(sb, nb));
        let mut merged = hist_of(&va);
        merged.merge(&hist_of(&vb));
        let mut concat = va.clone();
        concat.extend(&vb);
        prop_assert_eq!(merged, hist_of(&concat));
    }

    /// Histogram JSON export parses back to the identical snapshot.
    #[test]
    fn histogram_json_round_trips(seed in any::<u64>(), n in 0usize..80) {
        let h = hist_of(&samples(seed, n));
        let parsed = parse(&h.to_json().to_string()).unwrap();
        prop_assert_eq!(HistogramSnapshot::from_json(&parsed).unwrap(), h);
    }

    /// The `p50`/`p90`/`p99` accessors land within a factor of two of
    /// a true sample at that rank — the bucket-resolution error bound
    /// of a power-of-two histogram. The rank-`r` sample sits in bucket
    /// `[lo, 2·lo)`; the estimate is the bucket's geometric midpoint
    /// (off by ≤ √2) truncated to an integer and clamped into
    /// `[min, max]`, both of which only move it *toward* the sample —
    /// so `est ∈ [s/2, 2·s]` with `s = 0` estimated exactly.
    #[test]
    fn quantile_accessors_bound_relative_error(seed in any::<u64>(), n in 1usize..200) {
        let values = samples(seed, n);
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (q, est) in [(0.50, h.p50()), (0.90, h.p90()), (0.99, h.p99())] {
            // Same rank arithmetic as `quantile`: buckets partition the
            // value axis in order, so the first bucket whose cumulative
            // count reaches `rank` is the bucket of the rank-th
            // smallest sample.
            let rank = ((q * n as f64).ceil() as usize).max(1);
            let s = sorted[rank - 1];
            if s == 0 {
                prop_assert_eq!(est, 0, "q={} of {:?}", q, sorted);
            } else {
                prop_assert!(
                    est >= s / 2 && est <= s.saturating_mul(2),
                    "q={}: estimate {} outside [{}, {}] around sample {}",
                    q, est, s / 2, s.saturating_mul(2), s
                );
            }
        }
        // Quantiles are monotone in q.
        prop_assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
    }

    /// Every event the sink would write validates against the schema
    /// and round-trips through the JSON parser.
    #[test]
    fn event_lines_round_trip(seed in any::<u64>(), n_fields in 0usize..6) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut e = Event::new(Level::Info, "prop.event");
        if rng.random_range(0..2u8) == 1 {
            e.worker = Some(rng.random_range(0..64usize));
        }
        const KEYS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
        for (i, key) in KEYS.iter().enumerate().take(n_fields) {
            let v = match i % 4 {
                0 => Value::U64(rng.random_range(0..=u64::MAX)),
                1 => Value::F64(f64::from(rng.random_range(0..1000u32)) / 8.0),
                2 => Value::Bool(rng.random_range(0..2u8) == 1),
                _ => Value::Str(format!("s{}\n\"quoted\"", rng.random_range(0..100u32))),
            };
            e.fields.push((key, v));
        }
        let line = e.to_json().to_string();
        prop_assert!(a2a_obs::schema::validate_event_line(&line).is_ok(), "{}", line);
        let doc = parse(&line).unwrap();
        prop_assert_eq!(doc.get("event").and_then(Json::as_str), Some("prop.event"));
        let fields = doc.get("fields").unwrap().as_obj().unwrap();
        prop_assert_eq!(fields.len(), n_fields);
    }
}

//! Concurrency tests: the registry's lock-free metrics must be exact
//! under contention from `std::thread::scope` workers, and the JSONL
//! sink must never interleave lines.

use a2a_obs::{Event, JsonlSink, Level, Registry, Sink};

const WORKERS: usize = 8;
const PER_WORKER: u64 = 10_000;

#[test]
fn concurrent_counter_updates_are_exact() {
    let reg = Registry::new();
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let c = reg.counter("hits");
            let per_worker = reg.counter(&format!("worker.{w}.hits"));
            scope.spawn(move || {
                for _ in 0..PER_WORKER {
                    c.incr();
                    per_worker.incr();
                }
            });
        }
    });
    assert_eq!(reg.counter("hits").get(), WORKERS as u64 * PER_WORKER);
    for w in 0..WORKERS {
        assert_eq!(reg.counter(&format!("worker.{w}.hits")).get(), PER_WORKER);
    }
}

#[test]
fn concurrent_histogram_updates_lose_nothing() {
    let reg = Registry::new();
    let expected_sum: u64 = (0..WORKERS as u64)
        .map(|w| (0..PER_WORKER).map(|i| (w * PER_WORKER + i) % 1000).sum::<u64>())
        .sum();
    std::thread::scope(|scope| {
        for w in 0..WORKERS as u64 {
            let h = reg.histogram("latency");
            scope.spawn(move || {
                for i in 0..PER_WORKER {
                    h.record((w * PER_WORKER + i) % 1000);
                }
            });
        }
    });
    let snap = reg.histogram("latency").snapshot();
    assert_eq!(snap.count, WORKERS as u64 * PER_WORKER);
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, 999);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

#[test]
fn concurrent_gauge_last_writer_wins_some_writer() {
    let reg = Registry::new();
    std::thread::scope(|scope| {
        for w in 0..WORKERS as i64 {
            let g = reg.gauge("depth");
            scope.spawn(move || g.set(w));
        }
    });
    let v = reg.gauge("depth").get();
    assert!((0..WORKERS as i64).contains(&v), "gauge holds one writer's value, got {v}");
}

#[test]
fn parallel_merge_equals_serial_aggregate() {
    // Per-worker local histograms merged at the end must equal one
    // shared histogram fed the same samples.
    let reg = Registry::new();
    let shared = reg.histogram("shared");
    let merged = reg.histogram("merged");
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS as u64)
            .map(|w| {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    let local = a2a_obs::Histogram::default();
                    for i in 0..PER_WORKER {
                        let v = (w * 31 + i * 7) % 5000;
                        local.record(v);
                        shared.record(v);
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            merged.merge_from(&h.join().expect("worker must not panic"));
        }
    });
    assert_eq!(merged.snapshot(), shared.snapshot());
}

#[test]
fn jsonl_lines_never_interleave_under_contention() {
    let dir = std::env::temp_dir().join("a2a_obs_concurrency");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("contended.jsonl");
    {
        let sink = JsonlSink::create(&path, Level::Trace).unwrap();
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let e = Event::new(Level::Info, "contend.tick")
                            .field("w", w)
                            .field("i", i);
                        sink.record(&e);
                    }
                });
            }
        });
        sink.flush();
    }
    let content = std::fs::read_to_string(&path).unwrap();
    assert_eq!(content.lines().count(), WORKERS * 200);
    assert_eq!(a2a_obs::schema::validate_events(&content).unwrap().events, WORKERS * 200);
    let _ = std::fs::remove_file(&path);
}

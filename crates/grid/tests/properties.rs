//! Property-based tests for the topology layer.

use a2a_grid::{
    bfs_distances, diameter, torus_distance, Dir, GridKind, Lattice, Pos,
};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = GridKind> {
    prop_oneof![Just(GridKind::Square), Just(GridKind::Triangulate)]
}

fn arb_torus() -> impl Strategy<Value = Lattice> {
    (2u16..=12, 2u16..=12).prop_map(|(w, h)| Lattice::torus(w, h))
}

proptest! {
    /// Stepping along a direction and then its reverse returns to the start.
    #[test]
    fn step_then_reverse_is_identity(
        (l, kind, d) in (arb_torus(), arb_kind()).prop_flat_map(|(l, k)| {
            (Just(l), Just(k), 0..k.dir_count())
        }),
        xy in (0u16..12, 0u16..12),
    ) {
        let p = Pos::new(xy.0 % l.width(), xy.1 % l.height());
        let dir = Dir::new(d);
        let q = l.neighbor(p, kind, dir).expect("torus never blocks");
        let back = l.neighbor(q, kind, dir.reversed(kind)).expect("torus never blocks");
        prop_assert_eq!(back, p);
    }

    /// The closed-form torus distance agrees with BFS everywhere.
    #[test]
    fn closed_form_equals_bfs(
        (l, kind) in (arb_torus(), arb_kind()),
        src in (0u16..12, 0u16..12),
    ) {
        let a = Pos::new(src.0 % l.width(), src.1 % l.height());
        let bfs = bfs_distances(l, kind, a);
        for b in l.positions() {
            prop_assert_eq!(torus_distance(l, kind, a, b), bfs[l.index_of(b)]);
        }
    }

    /// Distance is a metric: symmetric, zero iff equal, triangle inequality.
    #[test]
    fn distance_is_a_metric(
        (l, kind) in (arb_torus(), arb_kind()),
        pts in ((0u16..12, 0u16..12), (0u16..12, 0u16..12), (0u16..12, 0u16..12)),
    ) {
        let norm = |xy: (u16, u16)| Pos::new(xy.0 % l.width(), xy.1 % l.height());
        let (a, b, c) = (norm(pts.0), norm(pts.1), norm(pts.2));
        let dab = torus_distance(l, kind, a, b);
        let dba = torus_distance(l, kind, b, a);
        prop_assert_eq!(dab, dba, "symmetry");
        prop_assert_eq!(dab == 0, a == b, "identity of indiscernibles");
        let dac = torus_distance(l, kind, a, c);
        let dcb = torus_distance(l, kind, c, b);
        prop_assert!(dab <= dac + dcb, "triangle inequality: {} > {} + {}", dab, dac, dcb);
    }

    /// T-distances never exceed S-distances (T has strictly more links),
    /// and the T diameter never exceeds the S diameter.
    #[test]
    fn triangulate_dominates_square(l in arb_torus(), src in (0u16..12, 0u16..12)) {
        let a = Pos::new(src.0 % l.width(), src.1 % l.height());
        let ds = bfs_distances(l, GridKind::Square, a);
        let dt = bfs_distances(l, GridKind::Triangulate, a);
        for (s, t) in ds.iter().zip(&dt) {
            prop_assert!(t <= s);
        }
        prop_assert!(diameter(l, GridKind::Triangulate) <= diameter(l, GridKind::Square));
    }

    /// Distance between neighbours is exactly 1.
    #[test]
    fn neighbors_are_at_distance_one(
        (l, kind) in (arb_torus(), arb_kind()),
        src in (0u16..12, 0u16..12),
    ) {
        // Avoid degenerate wrap-to-self tori (extent 2 diagonals stay distinct,
        // but a 2-wide torus makes east == west neighbour; distance is still 1).
        let a = Pos::new(src.0 % l.width(), src.1 % l.height());
        for b in l.neighbors(a, kind) {
            if b != a {
                prop_assert_eq!(torus_distance(l, kind, a, b), 1);
            }
        }
    }

    /// Row-major index round-trips through pos_at for arbitrary extents.
    #[test]
    fn index_roundtrip(l in arb_torus(), i in 0usize..144) {
        let i = i % l.len();
        prop_assert_eq!(l.index_of(l.pos_at(i)), i);
    }
}

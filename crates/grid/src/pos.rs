//! Grid positions in the XY coordinate system of the paper (Fig. 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node of an `M × M` (or more generally `W × H`) grid, labelled in the
/// XY-orthogonal coordinate system used by the paper.
///
/// `x` grows eastwards, `y` grows southwards (screen convention), so the
/// triangulate grid's extra diagonal `(x+1, y+1)`/`(x−1, y−1)` runs NW–SE as
/// in Fig. 1 of the paper.
///
/// # Examples
///
/// ```
/// use a2a_grid::Pos;
///
/// let p = Pos::new(3, 5);
/// assert_eq!((p.x, p.y), (3, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Pos {
    /// Column (west → east).
    pub x: u16,
    /// Row (north → south).
    pub y: u16,
}

impl Pos {
    /// Creates a position from its column and row.
    #[must_use]
    pub const fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Pos {
    fn from((x, y): (u16, u16)) -> Self {
        Self::new(x, y)
    }
}

/// A relative displacement between grid nodes, before any torus wrapping.
///
/// Displacements are what [`crate::GridKind::offset`] returns for each moving
/// direction; the lattice applies them modulo its extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Offset {
    /// Change along `x`.
    pub dx: i32,
    /// Change along `y`.
    pub dy: i32,
}

impl Offset {
    /// Creates a displacement.
    #[must_use]
    pub const fn new(dx: i32, dy: i32) -> Self {
        Self { dx, dy }
    }

    /// The opposite displacement.
    ///
    /// ```
    /// use a2a_grid::Offset;
    /// assert_eq!(Offset::new(1, -1).reversed(), Offset::new(-1, 1));
    /// ```
    #[must_use]
    pub const fn reversed(self) -> Self {
        Self::new(-self.dx, -self.dy)
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+}, {:+})", self.dx, self.dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display_and_conversion() {
        let p: Pos = (2, 7).into();
        assert_eq!(p.to_string(), "(2, 7)");
        assert_eq!(p, Pos::new(2, 7));
    }

    #[test]
    fn pos_ordering_is_lexicographic() {
        assert!(Pos::new(0, 9) < Pos::new(1, 0));
        assert!(Pos::new(1, 0) < Pos::new(1, 1));
    }

    #[test]
    fn offset_reverse_roundtrip() {
        let o = Offset::new(-3, 4);
        assert_eq!(o.reversed().reversed(), o);
        assert_eq!(o.to_string(), "(-3, +4)");
    }
}

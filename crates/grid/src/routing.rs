//! Minimal routing on the S- and T-tori.
//!
//! Sect. 2 of the paper notes that "the basic routing schemes are driven
//! by the Manhattan distance in S and by the so-called 'hexagonal'
//! distance in T" (Désérable's minimal-routing construction, the paper's
//! ref. [16]). This module provides shortest paths as explicit node
//! sequences — useful as ground truth for the lower-bound analysis and
//! for visualising optimal trajectories next to the evolved agents'.

use crate::direction::{Dir, GridKind};
use crate::distance::torus_distance;
use crate::lattice::Lattice;
use crate::pos::Pos;

/// One shortest path from `a` to `b` (inclusive of both endpoints),
/// produced by greedy distance descent: every hop moves to a neighbour
/// strictly closer to the target, so the path length equals the
/// closed-form distance.
///
/// Ties are broken by the rotational direction order, making the result
/// deterministic.
///
/// # Panics
///
/// Panics if the lattice is not a torus or a position lies outside it.
///
/// # Examples
///
/// ```
/// use a2a_grid::{shortest_path, GridKind, Lattice, Pos};
///
/// let l = Lattice::torus(8, 8);
/// let path = shortest_path(l, GridKind::Triangulate, Pos::new(0, 0), Pos::new(3, 3));
/// assert_eq!(path.len(), 4); // hex distance 3 via the NW–SE diagonal
/// ```
#[must_use]
pub fn shortest_path(lattice: Lattice, kind: GridKind, a: Pos, b: Pos) -> Vec<Pos> {
    assert!(lattice.is_torus(), "minimal routing is defined on the torus");
    let mut path = vec![a];
    let mut current = a;
    let mut remaining = torus_distance(lattice, kind, a, b);
    while remaining > 0 {
        let next = kind
            .dirs()
            .filter_map(|d| lattice.neighbor(current, kind, d))
            .find(|&n| torus_distance(lattice, kind, n, b) == remaining - 1)
            .expect("on a torus some neighbour is strictly closer");
        path.push(next);
        current = next;
        remaining -= 1;
    }
    path
}

/// The moving directions an agent at `from` could take on *some* shortest
/// path to `to` (the "minimal directions" of the routing scheme). Empty
/// iff `from == to`.
///
/// # Panics
///
/// Panics if the lattice is not a torus or a position lies outside it.
#[must_use]
pub fn minimal_directions(lattice: Lattice, kind: GridKind, from: Pos, to: Pos) -> Vec<Dir> {
    let d = torus_distance(lattice, kind, from, to);
    if d == 0 {
        return Vec::new();
    }
    kind.dirs()
        .filter(|&dir| {
            lattice
                .neighbor(from, kind, dir)
                .is_some_and(|n| torus_distance(lattice, kind, n, to) == d - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_endpoints_and_length() {
        let l = Lattice::torus(16, 16);
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let (a, b) = (Pos::new(2, 3), Pos::new(13, 9));
            let path = shortest_path(l, kind, a, b);
            assert_eq!(path.first(), Some(&a));
            assert_eq!(path.last(), Some(&b));
            assert_eq!(path.len() as u32 - 1, torus_distance(l, kind, a, b), "{kind}");
        }
    }

    #[test]
    fn consecutive_path_nodes_are_adjacent() {
        let l = Lattice::torus(8, 8);
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let path = shortest_path(l, kind, Pos::new(0, 0), Pos::new(4, 7));
            for w in path.windows(2) {
                assert!(
                    l.neighbors(w[0], kind).any(|n| n == w[1]),
                    "{kind}: {} !~ {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn trivial_path_is_the_single_node() {
        let l = Lattice::torus(4, 4);
        let p = Pos::new(1, 1);
        assert_eq!(shortest_path(l, GridKind::Square, p, p), vec![p]);
        assert!(minimal_directions(l, GridKind::Square, p, p).is_empty());
    }

    #[test]
    fn t_route_uses_the_diagonal() {
        // (0,0) → (3,3) in T: three diagonal hops.
        let l = Lattice::torus(8, 8);
        let path = shortest_path(l, GridKind::Triangulate, Pos::new(0, 0), Pos::new(3, 3));
        assert_eq!(
            path,
            vec![Pos::new(0, 0), Pos::new(1, 1), Pos::new(2, 2), Pos::new(3, 3)]
        );
    }

    #[test]
    fn minimal_directions_agree_with_distance_descent() {
        let l = Lattice::torus(8, 8);
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let (a, b) = (Pos::new(1, 2), Pos::new(6, 5));
            let dirs = minimal_directions(l, kind, a, b);
            assert!(!dirs.is_empty());
            let d = torus_distance(l, kind, a, b);
            for dir in dirs {
                let n = l.neighbor(a, kind, dir).unwrap();
                assert_eq!(torus_distance(l, kind, n, b), d - 1);
            }
        }
    }

    #[test]
    fn wraparound_routes_take_the_short_way() {
        let l = Lattice::torus(16, 16);
        // (0,0) → (15,0): one westward hop across the seam, not 15 east.
        let path = shortest_path(l, GridKind::Square, Pos::new(0, 0), Pos::new(15, 0));
        assert_eq!(path.len(), 2);
    }

    #[test]
    #[should_panic(expected = "torus")]
    fn bordered_fields_rejected() {
        let l = Lattice::bordered(4, 4);
        let _ = shortest_path(l, GridKind::Square, Pos::new(0, 0), Pos::new(1, 1));
    }
}

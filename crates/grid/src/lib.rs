//! Topology layer for the reproduction of Hoffmann & Désérable,
//! *CA Agents for All-to-All Communication Are Faster in the Triangulate
//! Grid* (PaCT 2013).
//!
//! This crate models the two CA networks compared in the paper (Sect. 2):
//!
//! * the **square torus "S"** — 4-valent, neighbours `(x±1, y)`, `(x, y±1)`;
//! * the **triangulate torus "T"** — 6-valent, adding the NW–SE diagonal
//!   links `(x−1, y−1)`, `(x+1, y+1)`.
//!
//! It provides:
//!
//! * [`Lattice`] — a `W × H` cell field, cyclic ([`Lattice::torus`], the
//!   paper's setting) or bordered (the extension environment);
//! * [`GridKind`] and [`Dir`] — the grid family and its moving directions;
//! * [`bfs_distances`], [`torus_distance`], [`survey_from`] — graph
//!   distances (Fig. 2 of the paper), diameter and antipodal sets;
//! * [`diameter_formula`], [`mean_distance_formula`] — the closed forms of
//!   Eq. (1)–(2) and the T/S ratios of Eq. (3).
//!
//! # Examples
//!
//! Reproducing the Fig. 2 headline numbers for the size-3 tori:
//!
//! ```
//! use a2a_grid::{survey_from, GridKind, Lattice, Pos};
//!
//! let field = Lattice::torus_of_size(3); // 8×8, N = 64
//! let s = survey_from(field, GridKind::Square, Pos::new(3, 3));
//! let t = survey_from(field, GridKind::Triangulate, Pos::new(3, 3));
//! assert_eq!((s.eccentricity, t.eccentricity), (8, 5));
//! assert!((s.mean - 4.0).abs() < 1e-12);
//! assert!((t.mean - 3.09).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod direction;
mod distance;
mod lattice;
mod metrics;
mod pos;
mod routing;

pub use direction::{dir_glyph, Dir, GridKind};
pub use distance::{
    bfs_distances, diameter, mean_distance, survey_from, torus_distance, DistanceSurvey,
};
pub use lattice::{EdgeRule, Lattice};
pub use metrics::{diameter_formula, diameter_ratio, mean_distance_formula, mean_distance_ratio};
pub use pos::{Offset, Pos};
pub use routing::{minimal_directions, shortest_path};

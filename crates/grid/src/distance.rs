//! Graph distances on the S- and T-grids: BFS ground truth, closed forms
//! (Manhattan and "hexagonal" distance, Sect. 2 of the paper), diameter,
//! mean distance and antipodal sets (Fig. 2).

use crate::direction::GridKind;
use crate::lattice::Lattice;
use crate::pos::Pos;
use std::collections::VecDeque;

/// Single-source shortest-path distances (in hops) from `from` to every
/// node, row-major, computed by breadth-first search.
///
/// Works for both edge rules; on a torus this is the ground truth the
/// closed forms below are validated against.
///
/// # Panics
///
/// Panics if `from` lies outside the field.
///
/// # Examples
///
/// ```
/// use a2a_grid::{bfs_distances, GridKind, Lattice, Pos};
///
/// let l = Lattice::torus(8, 8);
/// let d = bfs_distances(l, GridKind::Triangulate, Pos::new(0, 0));
/// assert_eq!(d[l.index_of(Pos::new(1, 1))], 1); // the NW–SE diagonal
/// ```
#[must_use]
pub fn bfs_distances(lattice: Lattice, kind: GridKind, from: Pos) -> Vec<u32> {
    assert!(lattice.contains(from), "source {from} outside {lattice}");
    let mut dist = vec![u32::MAX; lattice.len()];
    let mut queue = VecDeque::with_capacity(lattice.len());
    dist[lattice.index_of(from)] = 0;
    queue.push_back(from);
    while let Some(p) = queue.pop_front() {
        let dp = dist[lattice.index_of(p)];
        for q in lattice.neighbors(p, kind) {
            let slot = &mut dist[lattice.index_of(q)];
            if *slot == u32::MAX {
                *slot = dp + 1;
                queue.push_back(q);
            }
        }
    }
    dist
}

/// Closed-form torus distance between `a` and `b` for grid `kind`:
/// Manhattan distance in S, hexagonal distance in T (the metric driving
/// the paper's routing schemes, Sect. 2).
///
/// # Panics
///
/// Panics if `lattice` is not a torus or a position lies outside it.
#[must_use]
pub fn torus_distance(lattice: Lattice, kind: GridKind, a: Pos, b: Pos) -> u32 {
    assert!(lattice.is_torus(), "closed-form distance requires a torus");
    assert!(lattice.contains(a) && lattice.contains(b), "positions outside {lattice}");
    let w = i64::from(lattice.width());
    let h = i64::from(lattice.height());
    // Normalised displacement in [0, w) × [0, h).
    let dx = (i64::from(b.x) - i64::from(a.x)).rem_euclid(w);
    let dy = (i64::from(b.y) - i64::from(a.y)).rem_euclid(h);
    // Each axis can independently wrap the other way.
    let xs = [dx, dx - w];
    let ys = [dy, dy - h];
    let mut best = u32::MAX;
    for &x in &xs {
        for &y in &ys {
            let cost = match kind {
                GridKind::Square => x.abs() + y.abs(),
                // With only the (+1,+1)/(−1,−1) diagonal, same-sign
                // displacements ride the diagonal (max norm), mixed-sign
                // ones pay both axes.
                GridKind::Triangulate => {
                    if x.signum() * y.signum() >= 0 {
                        x.abs().max(y.abs())
                    } else {
                        x.abs() + y.abs()
                    }
                }
            };
            best = best.min(cost as u32);
        }
    }
    best
}

/// Summary of the distance structure of a field as seen from one node
/// (which, by vertex-transitivity, characterises the whole torus).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceSurvey {
    /// Eccentricity of the source (the torus diameter).
    pub eccentricity: u32,
    /// Mean distance from the source to all `N` nodes (self included,
    /// matching the paper's `δ̄`).
    pub mean: f64,
    /// Nodes realising the eccentricity ("antipodal" nodes, Fig. 2).
    pub antipodals: Vec<Pos>,
    /// Histogram: `histogram[d]` = number of nodes at distance `d`.
    pub histogram: Vec<usize>,
}

/// Surveys distances from `from` by BFS.
///
/// # Panics
///
/// Panics if `from` lies outside the field.
#[must_use]
pub fn survey_from(lattice: Lattice, kind: GridKind, from: Pos) -> DistanceSurvey {
    let dist = bfs_distances(lattice, kind, from);
    let ecc = *dist.iter().max().expect("non-empty lattice");
    assert_ne!(ecc, u32::MAX, "field must be connected");
    let mut histogram = vec![0usize; ecc as usize + 1];
    let mut total = 0u64;
    let mut antipodals = Vec::new();
    for (i, &d) in dist.iter().enumerate() {
        histogram[d as usize] += 1;
        total += u64::from(d);
        if d == ecc {
            antipodals.push(lattice.pos_at(i));
        }
    }
    DistanceSurvey {
        eccentricity: ecc,
        mean: total as f64 / lattice.len() as f64,
        antipodals,
        histogram,
    }
}

/// The exact diameter of the field.
///
/// On a torus this is the eccentricity of any single node
/// (vertex-transitivity); on a bordered field all sources are scanned.
#[must_use]
pub fn diameter(lattice: Lattice, kind: GridKind) -> u32 {
    if lattice.is_torus() {
        survey_from(lattice, kind, Pos::new(0, 0)).eccentricity
    } else {
        lattice
            .positions()
            .map(|p| survey_from(lattice, kind, p).eccentricity)
            .max()
            .expect("non-empty lattice")
    }
}

/// The exact mean distance `δ̄` over ordered node pairs (self-pairs
/// included, as in the paper's Eq. (2) normalisation).
#[must_use]
pub fn mean_distance(lattice: Lattice, kind: GridKind) -> f64 {
    if lattice.is_torus() {
        survey_from(lattice, kind, Pos::new(0, 0)).mean
    } else {
        let total: f64 = lattice
            .positions()
            .map(|p| survey_from(lattice, kind, p).mean)
            .sum();
        total / lattice.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_square_survey_n3() {
        // Fig. 2: for n = 3 (8×8), D_S = 8 and δ̄_S = 4.
        let l = Lattice::torus_of_size(3);
        let s = survey_from(l, GridKind::Square, Pos::new(3, 3));
        assert_eq!(s.eccentricity, 8);
        assert!((s.mean - 4.0).abs() < 1e-12, "mean = {}", s.mean);
        // The unique antipodal of the S-torus is the diagonally opposite node.
        assert_eq!(s.antipodals, vec![Pos::new(7, 7)]);
    }

    #[test]
    fn fig2_triangulate_survey_n3() {
        // Fig. 2: for n = 3 (8×8), D_T = 5 and δ̄_T ≈ 3.09.
        let l = Lattice::torus_of_size(3);
        let s = survey_from(l, GridKind::Triangulate, Pos::new(3, 3));
        assert_eq!(s.eccentricity, 5);
        assert!((s.mean - 3.09).abs() < 0.02, "mean = {}", s.mean);
    }

    #[test]
    fn diameter_16x16_matches_eq1() {
        // Eq. (1) for n = 4: D_S = 16, D_T = (2·15 + 0)/3 = 10.
        let l = Lattice::torus_of_size(4);
        assert_eq!(diameter(l, GridKind::Square), 16);
        assert_eq!(diameter(l, GridKind::Triangulate), 10);
    }

    #[test]
    fn closed_form_matches_bfs_small() {
        for (w, h) in [(4u16, 4u16), (5, 7), (8, 8), (6, 3)] {
            let l = Lattice::torus(w, h);
            for kind in [GridKind::Square, GridKind::Triangulate] {
                for a in [Pos::new(0, 0), Pos::new(2, 1)] {
                    let bfs = bfs_distances(l, kind, a);
                    for b in l.positions() {
                        assert_eq!(
                            torus_distance(l, kind, a, b),
                            bfs[l.index_of(b)],
                            "{kind} {w}x{h} {a}->{b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distance_histogram_sums_to_node_count() {
        let l = Lattice::torus(8, 8);
        let s = survey_from(l, GridKind::Triangulate, Pos::new(0, 0));
        assert_eq!(s.histogram.iter().sum::<usize>(), 64);
        assert_eq!(s.histogram[0], 1);
        // Degree of the T-grid: 6 nodes at distance 1.
        assert_eq!(s.histogram[1], 6);
    }

    #[test]
    fn bordered_diameter_exceeds_torus() {
        let torus = Lattice::torus(8, 8);
        let bordered = Lattice::bordered(8, 8);
        for kind in [GridKind::Square, GridKind::Triangulate] {
            assert!(diameter(bordered, kind) > diameter(torus, kind));
        }
    }

    #[test]
    #[should_panic(expected = "requires a torus")]
    fn closed_form_rejects_bordered() {
        let l = Lattice::bordered(4, 4);
        let _ = torus_distance(l, GridKind::Square, Pos::new(0, 0), Pos::new(1, 1));
    }
}

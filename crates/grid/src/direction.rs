//! Moving directions and the two grid kinds of the paper.
//!
//! The square torus "S" is 4-valent, the triangulate torus "T" is 6-valent
//! (Sect. 2 of the paper). Directions are represented uniformly as a small
//! index [`Dir`] whose valid range depends on the [`GridKind`]; turning is
//! rotation of that index.

use crate::pos::Offset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two CA network families compared by the paper (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GridKind {
    /// 4-valent torus "S": neighbours `(x±1, y)`, `(x, y±1)`.
    Square,
    /// 6-valent torus "T": the square links plus the NW–SE diagonal
    /// `(x−1, y−1)`, `(x+1, y+1)`.
    Triangulate,
}

/// Neighbour displacements of the square grid, in rotational (clockwise)
/// order starting east.
const SQUARE_OFFSETS: [Offset; 4] = [
    Offset::new(1, 0),
    Offset::new(0, 1),
    Offset::new(-1, 0),
    Offset::new(0, -1),
];

/// Neighbour displacements of the triangulate grid, in rotational order
/// starting east. The diagonal `(±1, ±1)` realises the paper's NW–SE link.
const TRIANGULATE_OFFSETS: [Offset; 6] = [
    Offset::new(1, 0),
    Offset::new(1, 1),
    Offset::new(0, 1),
    Offset::new(-1, 0),
    Offset::new(-1, -1),
    Offset::new(0, -1),
];

impl GridKind {
    /// Number of moving directions: 4 in S, 6 in T.
    ///
    /// ```
    /// use a2a_grid::GridKind;
    /// assert_eq!(GridKind::Square.dir_count(), 4);
    /// assert_eq!(GridKind::Triangulate.dir_count(), 6);
    /// ```
    #[must_use]
    pub const fn dir_count(self) -> u8 {
        match self {
            GridKind::Square => 4,
            GridKind::Triangulate => 6,
        }
    }

    /// The displacement of one step along direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is not valid for this grid kind
    /// (`dir.index() >= self.dir_count()`).
    #[must_use]
    pub fn offset(self, dir: Dir) -> Offset {
        self.offsets()[dir.index() as usize]
    }

    /// All neighbour displacements in rotational order (index = direction).
    #[must_use]
    pub fn offsets(self) -> &'static [Offset] {
        match self {
            GridKind::Square => &SQUARE_OFFSETS,
            GridKind::Triangulate => &TRIANGULATE_OFFSETS,
        }
    }

    /// Iterator over every valid direction of this grid kind.
    ///
    /// ```
    /// use a2a_grid::GridKind;
    /// assert_eq!(GridKind::Triangulate.dirs().count(), 6);
    /// ```
    pub fn dirs(self) -> impl Iterator<Item = Dir> {
        (0..self.dir_count()).map(Dir::new)
    }

    /// Short label used in paper-style output: `"S"` or `"T"`.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            GridKind::Square => "S",
            GridKind::Triangulate => "T",
        }
    }
}

impl fmt::Display for GridKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GridKind::Square => "square",
            GridKind::Triangulate => "triangulate",
        })
    }
}

/// A moving direction, stored as an index into the rotational order of
/// neighbour displacements of a [`GridKind`].
///
/// `Dir(0)` is east in both grids; increasing indices rotate clockwise
/// (90° steps in S, 60° steps in T).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Dir(u8);

impl Dir {
    /// Direction from a raw rotational index.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        Self(index)
    }

    /// The raw rotational index.
    #[must_use]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Rotates by `delta` rotational steps (may exceed the direction count;
    /// it is reduced modulo `kind.dir_count()`).
    ///
    /// ```
    /// use a2a_grid::{Dir, GridKind};
    /// let east = Dir::new(0);
    /// // 180° in the square grid is two 90° steps:
    /// assert_eq!(east.turned(GridKind::Square, 2), Dir::new(2));
    /// // …and three 60° steps in the triangulate grid:
    /// assert_eq!(east.turned(GridKind::Triangulate, 3), Dir::new(3));
    /// ```
    #[must_use]
    pub fn turned(self, kind: GridKind, delta: u8) -> Self {
        Self((self.0 + delta) % kind.dir_count())
    }

    /// The opposite direction (180° turn).
    #[must_use]
    pub fn reversed(self, kind: GridKind) -> Self {
        self.turned(kind, kind.dir_count() / 2)
    }

    /// Whether this index is a valid direction of `kind`.
    #[must_use]
    pub fn is_valid_for(self, kind: GridKind) -> bool {
        self.0 < kind.dir_count()
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Compass-style glyph for rendering an agent heading, matching the arrows
/// of Fig. 6/7 in the paper (`>`, `v`, `<`, `^` plus diagonal `\`).
#[must_use]
pub fn dir_glyph(kind: GridKind, dir: Dir) -> char {
    match (kind, dir.index()) {
        (GridKind::Square, 0) | (GridKind::Triangulate, 0) => '>',
        (GridKind::Square, 1) | (GridKind::Triangulate, 2) => 'v',
        (GridKind::Square, 2) | (GridKind::Triangulate, 3) => '<',
        (GridKind::Square, 3) | (GridKind::Triangulate, 5) => '^',
        (GridKind::Triangulate, 1) => '\\',
        (GridKind::Triangulate, 4) => '`',
        _ => '?',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_rotational_and_antipodal() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let n = kind.dir_count();
            for d in kind.dirs() {
                let opp = d.reversed(kind);
                assert_eq!(kind.offset(d).reversed(), kind.offset(opp), "{kind} {d}");
                assert_eq!(d.turned(kind, n), d, "full turn is identity");
            }
        }
    }

    #[test]
    fn square_offsets_match_paper() {
        use GridKind::Square as S;
        assert_eq!(S.offset(Dir::new(0)), Offset::new(1, 0));
        assert_eq!(S.offset(Dir::new(1)), Offset::new(0, 1));
        assert_eq!(S.offset(Dir::new(2)), Offset::new(-1, 0));
        assert_eq!(S.offset(Dir::new(3)), Offset::new(0, -1));
    }

    #[test]
    fn triangulate_adds_nw_se_diagonal() {
        let t = GridKind::Triangulate;
        let extras: Vec<Offset> = t
            .offsets()
            .iter()
            .filter(|o| !GridKind::Square.offsets().contains(o))
            .copied()
            .collect();
        assert_eq!(extras, vec![Offset::new(1, 1), Offset::new(-1, -1)]);
    }

    #[test]
    fn turning_wraps_modulo_dir_count() {
        let d = Dir::new(5);
        assert_eq!(d.turned(GridKind::Triangulate, 1), Dir::new(0));
        assert_eq!(Dir::new(3).turned(GridKind::Square, 1), Dir::new(0));
    }

    #[test]
    fn validity_check() {
        assert!(Dir::new(3).is_valid_for(GridKind::Square));
        assert!(!Dir::new(4).is_valid_for(GridKind::Square));
        assert!(Dir::new(5).is_valid_for(GridKind::Triangulate));
    }

    #[test]
    fn glyphs_are_distinct_per_kind() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let glyphs: Vec<char> = kind.dirs().map(|d| dir_glyph(kind, d)).collect();
            let mut dedup = glyphs.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), glyphs.len(), "{kind}");
        }
    }
}

//! Closed-form network metrics of the paper, Eq. (1)–(3): diameters, mean
//! distances and their T/S ratios for the size-`n` tori (`N = 2^n × 2^n`).

use crate::direction::GridKind;

/// Diameter `D_n` of the size-`n` torus, Eq. (1):
/// `D_n^S = √N` and `D_n^T = (2(√N − 1) + ε_n) / 3` with `ε_n` the parity
/// of `n`.
///
/// Returned as `f64` for uniformity with [`mean_distance_formula`]; both
/// formulas yield integers for valid `n`.
///
/// # Examples
///
/// ```
/// use a2a_grid::{diameter_formula, GridKind};
///
/// assert_eq!(diameter_formula(GridKind::Square, 3), 8.0);
/// assert_eq!(diameter_formula(GridKind::Triangulate, 3), 5.0);
/// assert_eq!(diameter_formula(GridKind::Triangulate, 4), 10.0);
/// ```
#[must_use]
pub fn diameter_formula(kind: GridKind, n: u32) -> f64 {
    let sqrt_n = f64::from(1u32 << n); // √N = 2^n
    match kind {
        GridKind::Square => sqrt_n,
        GridKind::Triangulate => {
            let eps = f64::from(n % 2);
            (2.0 * (sqrt_n - 1.0) + eps) / 3.0
        }
    }
}

/// Mean distance `δ̄_n` of the size-`n` torus, Eq. (2):
/// `δ̄_n^S = √N / 2` and `δ̄_n^T ≈ (7√N/3 − 1/√N) / 6`.
///
/// The T-form is the paper's asymptotic approximation; see
/// [`crate::mean_distance`] for the exact BFS value.
///
/// ```
/// use a2a_grid::{mean_distance_formula, GridKind};
///
/// assert_eq!(mean_distance_formula(GridKind::Square, 3), 4.0);
/// let t = mean_distance_formula(GridKind::Triangulate, 3);
/// assert!((t - 3.09).abs() < 0.01);
/// ```
#[must_use]
pub fn mean_distance_formula(kind: GridKind, n: u32) -> f64 {
    let sqrt_n = f64::from(1u32 << n);
    match kind {
        GridKind::Square => sqrt_n / 2.0,
        GridKind::Triangulate => (7.0 * sqrt_n / 3.0 - 1.0 / sqrt_n) / 6.0,
    }
}

/// Asymptotic diameter ratio `D^{T/S} ≈ 0.666…` of Eq. (3) at size `n`.
#[must_use]
pub fn diameter_ratio(n: u32) -> f64 {
    diameter_formula(GridKind::Triangulate, n) / diameter_formula(GridKind::Square, n)
}

/// Asymptotic mean-distance ratio `δ̄^{T/S} ≈ 0.775…` of Eq. (3) at size `n`.
#[must_use]
pub fn mean_distance_ratio(n: u32) -> f64 {
    mean_distance_formula(GridKind::Triangulate, n) / mean_distance_formula(GridKind::Square, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{diameter, mean_distance};
    use crate::lattice::Lattice;

    #[test]
    fn diameter_formula_matches_bfs_up_to_n5() {
        for n in 1..=5 {
            let l = Lattice::torus_of_size(n);
            for kind in [GridKind::Square, GridKind::Triangulate] {
                assert_eq!(
                    diameter_formula(kind, n),
                    f64::from(diameter(l, kind)),
                    "n = {n}, {kind}"
                );
            }
        }
    }

    #[test]
    fn square_mean_formula_is_exact() {
        for n in 1..=5 {
            let l = Lattice::torus_of_size(n);
            let exact = mean_distance(l, GridKind::Square);
            assert!(
                (mean_distance_formula(GridKind::Square, n) - exact).abs() < 1e-12,
                "n = {n}: formula {} vs exact {exact}",
                mean_distance_formula(GridKind::Square, n)
            );
        }
    }

    #[test]
    fn triangulate_mean_formula_is_close() {
        // The paper marks δ̄^T with ≈; accept a 3 % relative error.
        for n in 2..=5 {
            let l = Lattice::torus_of_size(n);
            let exact = mean_distance(l, GridKind::Triangulate);
            let approx = mean_distance_formula(GridKind::Triangulate, n);
            assert!(
                (approx - exact).abs() / exact < 0.03,
                "n = {n}: formula {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn ratios_approach_eq3_constants() {
        // Eq. (3): D^{T/S} ≈ 0.666 and δ̄^{T/S} ≈ 0.775 for large n.
        assert!((diameter_ratio(8) - 0.666).abs() < 0.01);
        assert!((mean_distance_ratio(8) - 0.775).abs() < 0.005);
    }
}

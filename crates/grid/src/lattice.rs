//! The cell field: a `W × H` lattice, cyclic (torus, as in the paper) or
//! bordered (the extension discussed in the paper's conclusion).

use crate::direction::{Dir, GridKind};
use crate::pos::{Offset, Pos};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Edge behaviour of the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeRule {
    /// Cyclic wrap-around (the paper's setting: "without borders").
    Wrap,
    /// Hard border: steps off the field are invalid. Listed by the paper as
    /// the *easier* environment and as future work for this model.
    Border,
}

/// A rectangular cell field of `width × height` nodes.
///
/// The paper uses `M × M` fields with `M = 2^n` (16×16 in the evaluation)
/// plus one 33×33 comparison; this type supports any extent ≥ 1 and both
/// [`EdgeRule`]s.
///
/// # Examples
///
/// ```
/// use a2a_grid::{Dir, GridKind, Lattice, Pos};
///
/// let field = Lattice::torus(16, 16);
/// // Wrap-around: stepping east from the last column lands on column 0.
/// let east = field.neighbor(Pos::new(15, 3), GridKind::Square, Dir::new(0));
/// assert_eq!(east, Some(Pos::new(0, 3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lattice {
    width: u16,
    height: u16,
    edge: EdgeRule,
}

impl Lattice {
    /// Creates a cyclic (torus) field, the paper's standard environment.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn torus(width: u16, height: u16) -> Self {
        Self::new(width, height, EdgeRule::Wrap)
    }

    /// Creates a bordered field (extension environment).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn bordered(width: u16, height: u16) -> Self {
        Self::new(width, height, EdgeRule::Border)
    }

    /// Creates a field with an explicit [`EdgeRule`].
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn new(width: u16, height: u16, edge: EdgeRule) -> Self {
        assert!(width > 0 && height > 0, "lattice extent must be positive");
        Self { width, height, edge }
    }

    /// The square `2^n × 2^n` torus of "size" `n` in the paper's notation.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15` (the extent would not fit in `u16`).
    #[must_use]
    pub fn torus_of_size(n: u32) -> Self {
        assert!(n <= 15, "size n must be at most 15");
        let m = 1u16 << n;
        Self::torus(m, m)
    }

    /// Field width (number of columns).
    #[must_use]
    pub const fn width(self) -> u16 {
        self.width
    }

    /// Field height (number of rows).
    #[must_use]
    pub const fn height(self) -> u16 {
        self.height
    }

    /// Edge behaviour.
    #[must_use]
    pub const fn edge(self) -> EdgeRule {
        self.edge
    }

    /// Whether the field wraps around (is a torus).
    #[must_use]
    pub const fn is_torus(self) -> bool {
        matches!(self.edge, EdgeRule::Wrap)
    }

    /// Total number of nodes `N = width × height`.
    #[must_use]
    pub const fn len(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// A lattice is never empty; provided for API completeness.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        false
    }

    /// Number of undirected links of the torus: `2N` for S, `3N` for T
    /// (Sect. 2 / Fig. 1 of the paper). For bordered fields the boundary
    /// loses links accordingly.
    #[must_use]
    pub fn link_count(self, kind: GridKind) -> usize {
        match self.edge {
            EdgeRule::Wrap => self.len() * kind.dir_count() as usize / 2,
            EdgeRule::Border => {
                // Count each undirected link once by enumerating "forward"
                // directions (the first half of the rotational order).
                let forward = 0..kind.dir_count() / 2;
                self.positions()
                    .map(|p| {
                        forward
                            .clone()
                            .filter(|&d| self.neighbor(p, kind, Dir::new(d)).is_some())
                            .count()
                    })
                    .sum()
            }
        }
    }

    /// Whether `pos` lies inside the field.
    #[must_use]
    pub fn contains(self, pos: Pos) -> bool {
        pos.x < self.width && pos.y < self.height
    }

    /// Row-major linear index of `pos`, used for flat storage.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the field.
    #[must_use]
    pub fn index_of(self, pos: Pos) -> usize {
        assert!(self.contains(pos), "{pos} outside {self}");
        pos.y as usize * self.width as usize + pos.x as usize
    }

    /// Inverse of [`Lattice::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn pos_at(self, index: usize) -> Pos {
        assert!(index < self.len(), "index {index} out of range for {self}");
        Pos::new(
            (index % self.width as usize) as u16,
            (index / self.width as usize) as u16,
        )
    }

    /// Iterator over all positions in row-major order.
    pub fn positions(self) -> impl Iterator<Item = Pos> {
        (0..self.len()).map(move |i| self.pos_at(i))
    }

    /// Applies a displacement, honouring the edge rule. Returns `None` when
    /// a bordered field is left.
    #[must_use]
    pub fn offset(self, pos: Pos, offset: Offset) -> Option<Pos> {
        let (w, h) = (i64::from(self.width), i64::from(self.height));
        let x = i64::from(pos.x) + i64::from(offset.dx);
        let y = i64::from(pos.y) + i64::from(offset.dy);
        match self.edge {
            EdgeRule::Wrap => Some(Pos::new(
                (x.rem_euclid(w)) as u16,
                (y.rem_euclid(h)) as u16,
            )),
            EdgeRule::Border => {
                if (0..w).contains(&x) && (0..h).contains(&y) {
                    Some(Pos::new(x as u16, y as u16))
                } else {
                    None
                }
            }
        }
    }

    /// The neighbour of `pos` along moving direction `dir` of grid `kind`.
    #[must_use]
    pub fn neighbor(self, pos: Pos, kind: GridKind, dir: Dir) -> Option<Pos> {
        self.offset(pos, kind.offset(dir))
    }

    /// All existing neighbours of `pos` in rotational direction order
    /// (4 in S, 6 in T on a torus; fewer on a border cell).
    pub fn neighbors(self, pos: Pos, kind: GridKind) -> impl Iterator<Item = Pos> {
        kind.dirs().filter_map(move |d| self.neighbor(pos, kind, d))
    }
}

impl fmt::Display for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} {}",
            self.width,
            self.height,
            match self.edge {
                EdgeRule::Wrap => "torus",
                EdgeRule::Border => "bordered field",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_n_torus_has_power_of_two_extent() {
        let l = Lattice::torus_of_size(4);
        assert_eq!((l.width(), l.height()), (16, 16));
        assert_eq!(l.len(), 256);
        assert!(l.is_torus());
    }

    #[test]
    #[should_panic(expected = "extent must be positive")]
    fn zero_extent_rejected() {
        let _ = Lattice::torus(0, 4);
    }

    #[test]
    fn link_counts_match_fig1() {
        // Fig. 1: tori of size n = 2 (N = 16) have 2N = 32 (S) and 3N = 48 (T) links.
        let l = Lattice::torus_of_size(2);
        assert_eq!(l.link_count(GridKind::Square), 32);
        assert_eq!(l.link_count(GridKind::Triangulate), 48);
    }

    #[test]
    fn bordered_link_counts() {
        // 3x3 bordered square grid: 2*3*2 = 12 links.
        let l = Lattice::bordered(3, 3);
        assert_eq!(l.link_count(GridKind::Square), 12);
        // Triangulate adds 2x2 = 4 interior diagonals.
        assert_eq!(l.link_count(GridKind::Triangulate), 16);
    }

    #[test]
    fn index_roundtrip() {
        let l = Lattice::torus(5, 7);
        for i in 0..l.len() {
            assert_eq!(l.index_of(l.pos_at(i)), i);
        }
        assert_eq!(l.positions().count(), 35);
    }

    #[test]
    fn torus_wraps_all_edges() {
        let l = Lattice::torus(4, 4);
        let k = GridKind::Triangulate;
        assert_eq!(
            l.neighbor(Pos::new(0, 0), k, Dir::new(4)),
            Some(Pos::new(3, 3)),
            "NW diagonal wraps both axes"
        );
        assert_eq!(l.neighbor(Pos::new(3, 0), k, Dir::new(0)), Some(Pos::new(0, 0)));
    }

    #[test]
    fn border_blocks_departure() {
        let l = Lattice::bordered(4, 4);
        let k = GridKind::Square;
        assert_eq!(l.neighbor(Pos::new(0, 0), k, Dir::new(3)), None);
        assert_eq!(l.neighbor(Pos::new(0, 0), k, Dir::new(0)), Some(Pos::new(1, 0)));
        assert_eq!(l.neighbors(Pos::new(0, 0), k).count(), 2);
    }

    #[test]
    fn torus_neighbor_counts_are_valence() {
        let l = Lattice::torus(8, 8);
        for p in l.positions() {
            assert_eq!(l.neighbors(p, GridKind::Square).count(), 4);
            assert_eq!(l.neighbors(p, GridKind::Triangulate).count(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn index_of_out_of_range_panics() {
        let l = Lattice::torus(4, 4);
        let _ = l.index_of(Pos::new(4, 0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Lattice::torus(16, 16).to_string(), "16x16 torus");
        assert_eq!(Lattice::bordered(4, 8).to_string(), "4x8 bordered field");
    }
}

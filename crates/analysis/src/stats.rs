//! Descriptive statistics for experiment results.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for `n < 2`).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (mean of the middle pair for even `n`).
    pub median: f64,
}

impl Summary {
    /// Summarises a sample.
    ///
    /// Returns `None` for an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("statistics require non-NaN samples"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }

    /// Summarises integer observations (e.g. communication times).
    #[must_use]
    pub fn of_u32(values: &[u32]) -> Option<Self> {
        let floats: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        Self::of(&floats)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={} max={} median={:.1}",
            self.n, self.mean, self.std_dev, self.min, self.max, self.median
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic example is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_none() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn singleton_sample() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of_u32(&[9, 1, 5]).unwrap();
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn display_contains_fields() {
        let s = Summary::of(&[1.0, 2.0]).unwrap().to_string();
        assert!(s.contains("mean=1.50"), "{s}");
    }
}

//! Behaviour-level transformations used by the ablation experiments:
//! suppressing colour writes and reinterpreting turn codes.

use a2a_fsm::{Entry, FsmSpec, Genome, TurnSet};

/// Returns a copy of `genome` that never writes colour 1 (every
/// `setcolor` output forced to 0).
///
/// With the paper's all-zero initial colouring this makes the colour
/// mechanism inert: the agent still *reads* colours but only ever sees 0,
/// so only the `x ∈ {0, 1}` table columns remain reachable. This isolates
/// the contribution of indirect ("pheromone") communication, which the
/// paper credits with a ≈ 2× speed-up in earlier work.
#[must_use]
pub fn suppress_colors(genome: &Genome) -> Genome {
    let entries: Vec<Entry> = genome
        .entries()
        .iter()
        .map(|e| {
            let mut e = *e;
            e.action.set_color = 0;
            e
        })
        .collect();
    Genome::from_entries(genome.spec(), entries)
}

/// Re-expresses a restricted-turn T-genome over the full 6-code turn set
/// **preserving behaviour**: code `c` becomes the delta
/// `{0, 1, 3, 5}[c]` that [`TurnSet::TriangulateRestricted`] would apply.
///
/// # Panics
///
/// Panics if the genome does not use [`TurnSet::TriangulateRestricted`].
#[must_use]
pub fn remap_to_full_turns(genome: &Genome) -> Genome {
    let spec = genome.spec();
    assert_eq!(
        spec.turn_set,
        TurnSet::TriangulateRestricted,
        "remap applies to restricted T-genomes"
    );
    let full_spec = FsmSpec::new(spec.n_states, spec.n_colors, TurnSet::TriangulateFull);
    let entries: Vec<Entry> = genome
        .entries()
        .iter()
        .map(|e| {
            let mut e = *e;
            e.action.turn = spec.turn_set.delta(e.action.turn);
            e
        })
        .collect();
    Genome::from_entries(full_spec, entries)
}

/// Reinterprets a restricted-turn T-genome **naively** over the full turn
/// set: code `c` keeps delta `c`, so codes 2 and 3 now mean +120° and
/// 180° instead of 180° and −60°. This deliberately perturbs the evolved
/// behaviour to show the restricted turn set is load-bearing.
///
/// # Panics
///
/// Panics if the genome does not use [`TurnSet::TriangulateRestricted`].
#[must_use]
pub fn reinterpret_turns_naive(genome: &Genome) -> Genome {
    let spec = genome.spec();
    assert_eq!(
        spec.turn_set,
        TurnSet::TriangulateRestricted,
        "reinterpretation applies to restricted T-genomes"
    );
    let full_spec = FsmSpec::new(spec.n_states, spec.n_colors, TurnSet::TriangulateFull);
    Genome::from_entries(full_spec, genome.entries().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::{best_t_agent, Percept};
    use a2a_grid::GridKind;

    #[test]
    fn suppressed_genome_never_sets_color() {
        let g = suppress_colors(&a2a_fsm::best_s_agent());
        assert!(g.entries().iter().all(|e| e.action.set_color == 0));
        assert_eq!(g.spec(), FsmSpec::paper(GridKind::Square));
    }

    #[test]
    fn remap_preserves_turn_semantics() {
        let g = best_t_agent();
        let full = remap_to_full_turns(&g);
        for x in 0..8 {
            for s in 0..4 {
                let p = Percept::decode(x, 2);
                let orig = g.lookup(p, s);
                let new = full.lookup(p, s);
                assert_eq!(
                    g.spec().turn_set.delta(orig.action.turn),
                    full.spec().turn_set.delta(new.action.turn),
                    "same direction delta"
                );
                assert_eq!(orig.next_state, new.next_state);
                assert_eq!(orig.action.mv, new.action.mv);
            }
        }
    }

    #[test]
    fn naive_reinterpretation_changes_some_deltas() {
        let g = best_t_agent();
        let naive = reinterpret_turns_naive(&g);
        let mut changed = 0;
        for (a, b) in g.entries().iter().zip(naive.entries()) {
            let da = g.spec().turn_set.delta(a.action.turn);
            let db = naive.spec().turn_set.delta(b.action.turn);
            if da != db {
                changed += 1;
            }
        }
        assert!(changed > 0, "codes 2/3 must change meaning");
    }

    #[test]
    #[should_panic(expected = "restricted T-genomes")]
    fn remap_rejects_square_genomes() {
        let _ = remap_to_full_turns(&a2a_fsm::best_s_agent());
    }
}

//! Minimal text-table builder for paper-style console output and the
//! markdown blocks recorded in EXPERIMENTS.md.

use std::fmt;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use a2a_analysis::TextTable;
///
/// let mut t = TextTable::new(vec!["N_agents", "T-grid", "S-grid"]);
/// t.add_row(vec!["2".into(), "58.43".into(), "82.78".into()]);
/// let s = t.to_string();
/// assert!(s.contains("N_agents"));
/// assert!(s.contains("58.43"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match the header");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders as a GitHub-flavoured markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    /// Renders as an aligned plain-text table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float like the paper's tables (two decimals).
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio like the paper's Table 1 (three decimals).
#[must_use]
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_separator() {
        let mut t = TextTable::new(vec!["k", "mean"]);
        t.add_row(vec!["2".into(), "58.43".into()]);
        t.add_row(vec!["256".into(), "9.00".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("256"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn markdown_shape() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert_eq!(md.lines().count(), 3);
        assert!(md.lines().nth(1).unwrap().contains("---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a"]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(58.432_1), "58.43");
        assert_eq!(f3(0.705_9), "0.706");
    }
}

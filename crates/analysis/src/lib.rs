//! Experiment runners, statistics and table formatting for the
//! reproduction of Hoffmann & Désérable (PaCT 2013).
//!
//! Every table and figure of the paper has a runner here (see DESIGN.md's
//! per-experiment index):
//!
//! * [`experiments::density`] — **Table 1 / Fig. 5**: communication time
//!   vs. agent density in the T- and S-grids, with the published paper
//!   values for side-by-side comparison;
//! * [`experiments::distances`] — **Fig. 2 / Eq. (1)–(3)**: distance maps,
//!   diameters, mean distances and the T/S ratios;
//! * [`experiments::traces`] — **Fig. 6 / Fig. 7**: two-agent street- and
//!   honeycomb-building traces;
//! * [`experiments::grid33`] — the 33×33 scaling comparison of Sect. 5;
//! * [`experiments::ablation`] — colours, initial control states,
//!   conflict priority and turn-set ablations;
//! * [`experiments::extensions`] — bordered and obstacle environments
//!   (the conclusion's future work).
//!
//! Supporting utilities: [`Summary`] statistics, [`TextTable`] rendering
//! and the genome transforms used by the ablations
//! ([`suppress_colors`], [`remap_to_full_turns`]).
//!
//! # Examples
//!
//! A miniature Table 1 (three densities, a few configurations):
//!
//! ```
//! use a2a_analysis::experiments::density::{run_density_comparison, DensityExperiment};
//!
//! # fn main() -> Result<(), a2a_sim::SimError> {
//! let exp = DensityExperiment {
//!     m: 16,
//!     agent_counts: vec![2, 256],
//!     n_random: 3,
//!     seed: 2013,
//!     t_max: 3000,
//!     threads: 1,
//! };
//! let cmp = run_density_comparison(&exp)?;
//! println!("{}", cmp.to_table());
//! assert!(cmp.ratios().iter().all(|r| *r < 1.0), "T is faster everywhere");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bounds;
mod chart;
mod histogram;
pub mod experiments;
mod inference;
pub mod report;
mod stats;
mod table;
mod transform;
mod usage;

pub use bounds::{diffusion_lower_bound, stationary_time};
pub use chart::{AsciiChart, Series, XScale};
pub use histogram::Histogram;
pub use inference::{
    bootstrap_mean_ci, significantly_different, welch_t, ConfidenceInterval,
};
pub use report::{perf_report, PerfReport, ReportInputs};
pub use stats::Summary;
pub use table::{f2, f3, TextTable};
pub use transform::{remap_to_full_turns, reinterpret_turns_naive, suppress_colors};
pub use usage::{profile_usage, UsageProfile};

//! Theoretical lower bounds on the communication time.
//!
//! The paper compares the measured ratios against the diameter ratio of
//! Eq. (3); these bounds make that comparison per-configuration. They are
//! conservative (valid for *any* behaviour), so measured/bound gives an
//! upper estimate of how far the evolved agents are from optimal.

use a2a_grid::{torus_distance, GridKind, Lattice};
use a2a_sim::InitialConfig;

/// A per-configuration lower bound on `t_comm`, for any agent behaviour.
///
/// An information bit travels at most one hop per exchange; its carriers
/// move at most one cell per step; and the receiving agent moves at most
/// one cell towards it per step. The pairwise "gap" therefore closes by
/// at most 3 per counted step, and the free placement exchange already
/// covers distance 1:
///
/// `t_comm ≥ max_{i,j} ⌈(d(i, j) − 1) / 3⌉`.
///
/// The bound is loose in crowded fields (blocked agents cannot move; the
/// fully packed field actually needs `D − 1` steps) but tight in spirit
/// for sparse ones: it scales with the grid diameter, which is the
/// paper's explanation of the T/S speed-up.
///
/// # Panics
///
/// Panics if the lattice is not a torus or a placement lies outside it.
#[must_use]
pub fn diffusion_lower_bound(lattice: Lattice, kind: GridKind, init: &InitialConfig) -> u32 {
    let mut max_d = 0u32;
    let placements = init.placements();
    for (a, &(pa, _)) in placements.iter().enumerate() {
        for &(pb, _) in placements.iter().skip(a + 1) {
            max_d = max_d.max(torus_distance(lattice, kind, pa, pb));
        }
    }
    max_d.saturating_sub(1).div_ceil(3)
}

/// The stationary-agent bound: if no agent ever moved, bit `i` reaches
/// agent `j` only through chains of adjacent agents, one hop per step.
/// Returns `None` when the occupancy graph is disconnected (the task is
/// then unsolvable without movement) — which is the normal sparse case
/// and the reason the agents must move at all.
///
/// # Panics
///
/// Panics if a placement lies outside the lattice.
#[must_use]
pub fn stationary_time(lattice: Lattice, kind: GridKind, init: &InitialConfig) -> Option<u32> {
    let placements = init.placements();
    let k = placements.len();
    let mut occupied = vec![usize::MAX; lattice.len()];
    for (i, &(p, _)) in placements.iter().enumerate() {
        occupied[lattice.index_of(p)] = i;
    }
    // BFS over the agent-adjacency graph from each agent; the answer is
    // the graph's diameter minus the free placement exchange.
    let mut ecc_max = 0u32;
    for start in 0..k {
        let mut dist = vec![u32::MAX; k];
        dist[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(i) = queue.pop_front() {
            for n in lattice.neighbors(placements[i].0, kind) {
                let j = occupied[lattice.index_of(n)];
                if j != usize::MAX && dist[j] == u32::MAX {
                    dist[j] = dist[i] + 1;
                    queue.push_back(j);
                }
            }
        }
        let ecc = *dist.iter().max().expect("k >= 1");
        if ecc == u32::MAX {
            return None;
        }
        ecc_max = ecc_max.max(ecc);
    }
    Some(ecc_max.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_grid::{Dir, Pos};

    fn torus16() -> Lattice {
        Lattice::torus(16, 16)
    }

    #[test]
    fn adjacent_agents_have_zero_bound() {
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(1, 0), Dir::new(0)),
        ]);
        assert_eq!(diffusion_lower_bound(torus16(), GridKind::Square, &init), 0);
        assert_eq!(stationary_time(torus16(), GridKind::Square, &init), Some(0));
    }

    #[test]
    fn antipodal_pair_bound() {
        // Distance 16 in S (8 + 8 across the torus) ⇒ ⌈15/3⌉ = 5.
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(8, 8), Dir::new(0)),
        ]);
        assert_eq!(diffusion_lower_bound(torus16(), GridKind::Square, &init), 5);
        // In T the same pair is at hexagonal distance 8 ⇒ ⌈7/3⌉ = 3.
        assert_eq!(diffusion_lower_bound(torus16(), GridKind::Triangulate, &init), 3);
    }

    #[test]
    fn t_bound_never_exceeds_s_bound() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..20 {
            let init =
                InitialConfig::random(torus16(), GridKind::Square, 8, &[], &mut rng).unwrap();
            let s = diffusion_lower_bound(torus16(), GridKind::Square, &init);
            let t = diffusion_lower_bound(torus16(), GridKind::Triangulate, &init);
            assert!(t <= s, "T distances dominate S distances");
        }
    }

    #[test]
    fn fully_packed_stationary_time_is_diameter_minus_one() {
        // The packed field cannot move, so the stationary bound is exact
        // there: D − 1 counted steps (Table 1's k = 256 values).
        let lattice = torus16();
        let placements: Vec<_> = lattice.positions().map(|p| (p, Dir::new(0))).collect();
        let init = InitialConfig::new(placements);
        assert_eq!(stationary_time(lattice, GridKind::Square, &init), Some(15));
        assert_eq!(stationary_time(lattice, GridKind::Triangulate, &init), Some(9));
    }

    #[test]
    fn sparse_agents_are_stationary_disconnected() {
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(0)),
            (Pos::new(5, 5), Dir::new(0)),
        ]);
        assert_eq!(stationary_time(torus16(), GridKind::Square, &init), None);
    }

    #[test]
    fn bound_is_actually_a_lower_bound_for_the_best_agents() {
        use a2a_fsm::best_agent;
        use a2a_sim::{simulate, WorldConfig};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let cfg = WorldConfig::paper(kind, 16);
            let mut rng = SmallRng::seed_from_u64(11);
            for _ in 0..15 {
                let init =
                    InitialConfig::random(cfg.lattice, kind, 4, &[], &mut rng).unwrap();
                let bound = diffusion_lower_bound(cfg.lattice, kind, &init);
                let out = simulate(&cfg, best_agent(kind), &init, 3000).unwrap();
                let t = out.t_comm.expect("best agents are reliable");
                assert!(t >= bound, "{kind}: measured {t} < bound {bound}");
            }
        }
    }
}

//! Perf-trend observatory: turns sealed bench artifacts
//! (`BENCH_kernel.json`, `BENCH_fitness.json`, `BENCH_obs.json`) and the
//! append-only `results/bench_history.jsonl` trend file into one
//! markdown report with SVG sparklines — and a machine-checkable list of
//! regressions, so CI can gate on drift the same way `obs_validate`
//! gates on schemas.
//!
//! The regression rules mirror the validators' acceptance terms:
//!
//! * any headline ratio (`kernel.speedup`, `kernel.frontier_speedup`,
//!   `kernel.sliced_speedup`, `fitness.speedup`) below 1 is flagged —
//!   the optimisation the ratio measures has become a pessimisation
//!   (this is how the bit-sliced kernel's `sliced_speedup < 1` shows up
//!   from the artifacts alone, and how a frontier kernel losing to its
//!   own dense scan would).
//!   Exception: when the sealed baseline *also* records that ratio
//!   below 1, the pessimisation is a known, documented negative result
//!   (DESIGN.md §11) — it is reported in the verdict but does not gate,
//!   otherwise `--check` would be permanently red on an honest record;
//! * against an explicit kernel baseline, a drop below
//!   [`KERNEL_REGRESSION_FLOOR`](a2a_obs::schema::KERNEL_REGRESSION_FLOOR)
//!   of the baseline's ratio is flagged (same floor as
//!   `obs_validate --kernel-baseline`);
//! * against the history, the latest point of every tracked *ratio*
//!   series is compared to the median of the earlier points; a drop
//!   below the same floor is drift worth failing on. Absolute
//!   throughput series (steps/s, evals/s) are charted but never gate —
//!   they scale with the run's `--configs` and the machine, so mixed
//!   history lines would false-positive.

use crate::table::{f2, TextTable};
use a2a_obs::json::Json;
use a2a_obs::schema::KERNEL_REGRESSION_FLOOR;
use a2a_obs::HistogramSnapshot;

/// The sealed inputs of one report. Every artifact is optional — the
/// report renders whatever is present — but all documents must already
/// be checksum-verified (the `obs_report` binary validates before
/// building; library callers are trusted).
#[derive(Debug, Default)]
pub struct ReportInputs<'a> {
    /// `BENCH_kernel.json` (`a2a-obs/kernel-bench/v3`).
    pub kernel: Option<&'a Json>,
    /// `BENCH_fitness.json` (`a2a-obs/fitness-bench/v1`).
    pub fitness: Option<&'a Json>,
    /// `BENCH_obs.json` (`a2a-obs/bench-snapshot/v1`).
    pub snapshot: Option<&'a Json>,
    /// Parsed `results/bench_history.jsonl` entries, oldest first.
    pub history: &'a [Json],
    /// Kernel baseline fixture to diff the fresh `kernel` against.
    pub baseline: Option<&'a Json>,
}

/// One rendered report: the markdown body, the sparkline SVGs it
/// references (file name → content), and the regression list that
/// decides `obs_report --check`'s exit code.
#[derive(Debug)]
pub struct PerfReport {
    /// Markdown body (sparklines referenced by relative file name).
    pub markdown: String,
    /// `(file_name, svg)` pairs to write next to the markdown.
    pub sparklines: Vec<(String, String)>,
    /// Human-readable regression findings; empty means healthy.
    pub regressions: Vec<String>,
}

/// The history series the observatory tracks: markdown label, JSON
/// path into a `bench-history/v1` line, and whether a *drop* of the
/// latest value below the floor×median gates. Only the scale-invariant
/// ratios gate: absolute throughput depends on the run's `--configs`
/// and on the machine, so consecutive history lines of different scale
/// would false-positive — those series are charted, not gated.
const TREND_METRICS: &[(&str, &[&str], bool)] = &[
    ("kernel speedup (multi/single)", &["kernel", "speedup"], true),
    ("frontier speedup (dense/multi)", &["kernel", "frontier_speedup"], true),
    ("sliced speedup (sliced/multi)", &["kernel", "sliced_speedup"], true),
    ("multi kernel steps/s", &["kernel", "multi_steps_per_sec"], false),
    ("fitness speedup (adaptive/baseline)", &["fitness", "speedup"], true),
    ("fitness evals/s", &["fitness", "evals_per_sec"], false),
];

fn num(doc: &Json, path: &[&str]) -> Option<f64> {
    path.iter().try_fold(doc, |d, k| d.get(k)).and_then(Json::as_f64)
}

fn fmt(v: Option<f64>) -> String {
    match v {
        Some(v) if v.abs() >= 10_000.0 => format!("{v:.3e}"),
        Some(v) => f2(v),
        None => "–".to_string(),
    }
}

/// Median of a non-empty slice (sorted copy; even length averages).
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("trend values are not NaN"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn sparkline_file(label: &str) -> String {
    let slug: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect();
    format!("spark_{}.svg", slug.trim_matches('_').replace("__", "_"))
}

/// Builds the full observatory report from the sealed inputs.
#[must_use]
pub fn perf_report(inputs: &ReportInputs<'_>) -> PerfReport {
    let mut md = String::from("# Perf observatory\n\n");
    let mut regressions: Vec<String> = Vec::new();
    let mut known: Vec<String> = Vec::new();
    let mut sparklines: Vec<(String, String)> = Vec::new();

    // Headline numbers from the freshest sealed artifacts. A ratio < 1
    // gates unless the baseline already records it < 1 — then it is the
    // documented negative result, reported but not failed on.
    let mut headline = TextTable::new(vec!["metric", "value", "source"]);
    let mut ratio = |doc: Option<&Json>,
                     path: &[&str],
                     label: &str,
                     source: &str,
                     baselined: Option<f64>| {
        let v = num(doc?, path);
        if let Some(v) = v {
            if v < 1.0 {
                let finding = format!(
                    "{label} = {} < 1: the measured optimisation is a pessimisation \
                     (from {source})",
                    f2(v)
                );
                if baselined.is_some_and(|b| b < 1.0) {
                    known.push(format!(
                        "{finding}; the baseline records {} — a known negative result, \
                         drift is gated separately",
                        f2(baselined.expect("checked"))
                    ));
                } else {
                    regressions.push(finding);
                }
            }
        }
        v
    };
    let kernel_rows = [
        (["speedup"].as_slice(), "kernel speedup (multi/single)", true),
        (&["frontier_speedup"], "frontier speedup (dense/multi)", true),
        (&["sliced_speedup"], "sliced speedup (sliced/multi)", true),
        // The parallel ratio is charted, not gated here: on a 1-worker
        // machine it carries no dispatch win by construction, and the
        // schema validator arms its 3x gate from `parallel.workers`.
        (&["parallel_speedup"], "parallel speedup (dense/parallel)", false),
        (&["multi", "steps_per_sec"], "multi kernel steps/s", false),
        (&["single", "steps_per_sec"], "single kernel steps/s", false),
    ];
    for (path, label, gated) in kernel_rows {
        let v = if gated {
            let baselined = inputs.baseline.and_then(|b| num(b, path));
            ratio(inputs.kernel, path, label, "BENCH_kernel.json", baselined)
        } else {
            inputs.kernel.and_then(|d| num(d, path))
        };
        if inputs.kernel.is_some() {
            headline.add_row(vec![label.into(), fmt(v), "BENCH_kernel.json".into()]);
        }
    }
    if inputs.fitness.is_some() {
        let v = ratio(
            inputs.fitness,
            &["speedup"],
            "fitness speedup (adaptive/baseline)",
            "BENCH_fitness.json",
            None,
        );
        headline.add_row(vec![
            "fitness speedup (adaptive/baseline)".into(),
            fmt(v),
            "BENCH_fitness.json".into(),
        ]);
    }
    if let Some(snap) = inputs.snapshot {
        headline.add_row(vec![
            "batch kernel agent-steps/s".into(),
            fmt(num(snap, &["kernel", "steps_per_sec"])),
            "BENCH_obs.json".into(),
        ]);
        headline.add_row(vec![
            "fitness evals/s".into(),
            fmt(num(snap, &["fitness", "evals_per_sec"])),
            "BENCH_obs.json".into(),
        ]);
    }
    if headline.row_count() > 0 {
        md.push_str("## Headline numbers\n\n");
        md.push_str(&headline.to_markdown());
        md.push('\n');
    }

    // Baseline diff: the same floor `obs_validate --kernel-baseline`
    // enforces, but reported as a delta table either way.
    if let (Some(fresh), Some(base)) = (inputs.kernel, inputs.baseline) {
        let mut diff = TextTable::new(vec!["ratio", "baseline", "current", "delta"]);
        for key in ["speedup", "frontier_speedup", "sliced_speedup"] {
            let (b, c) = (num(base, &[key]), num(fresh, &[key]));
            let delta = match (b, c) {
                (Some(b), Some(c)) if b > 0.0 => {
                    let pct = (c / b - 1.0) * 100.0;
                    if c < KERNEL_REGRESSION_FLOOR * b {
                        regressions.push(format!(
                            "kernel.{key} = {} fell below {:.0}% of the baseline's {} \
                             ({pct:+.1}%)",
                            f2(c),
                            KERNEL_REGRESSION_FLOOR * 100.0,
                            f2(b),
                        ));
                    }
                    format!("{pct:+.1}%")
                }
                _ => "–".to_string(),
            };
            diff.add_row(vec![format!("kernel.{key}"), fmt(b), fmt(c), delta]);
        }
        md.push_str("## Baseline comparison\n\n");
        md.push_str(&diff.to_markdown());
        md.push('\n');
    }

    // t_comm tail latency from the perf snapshot's histograms — the
    // log-bucket quantile accessors keep these within 2× of the true
    // per-rank sample.
    if let Some(entries) = inputs
        .snapshot
        .and_then(|s| s.get("t_comm"))
        .and_then(|t| match t {
            Json::Arr(entries) => Some(entries),
            _ => None,
        })
    {
        let mut table = TextTable::new(vec!["grid", "k", "p50", "p90", "p99"]);
        for entry in entries {
            let Some(hist) = entry
                .get("histogram")
                .and_then(|h| HistogramSnapshot::from_json(h).ok())
            else {
                continue;
            };
            table.add_row(vec![
                entry.get("grid").and_then(Json::as_str).unwrap_or("?").to_string(),
                fmt(num(entry, &["k"])),
                hist.p50().to_string(),
                hist.p90().to_string(),
                hist.p99().to_string(),
            ]);
        }
        if table.row_count() > 0 {
            md.push_str("## t_comm quantiles (steps)\n\n");
            md.push_str(&table.to_markdown());
            md.push('\n');
        }
    }

    // Trend series over the history file: sparkline per metric, drift
    // check of the newest point against the median of the older ones.
    if !inputs.history.is_empty() {
        let mut table = TextTable::new(vec!["metric", "points", "median", "latest", "trend"]);
        for (label, path, gated) in TREND_METRICS {
            let series: Vec<f64> =
                inputs.history.iter().filter_map(|entry| num(entry, path)).collect();
            if series.is_empty() {
                continue;
            }
            let latest = *series.last().expect("non-empty");
            let prior = &series[..series.len() - 1];
            let med = median(if prior.is_empty() { &series } else { prior });
            if *gated && !prior.is_empty() && med > 0.0 && latest < KERNEL_REGRESSION_FLOOR * med {
                regressions.push(format!(
                    "history drift: {label} latest {} fell below {:.0}% of the \
                     prior median {} over {} points",
                    f2(latest),
                    KERNEL_REGRESSION_FLOOR * 100.0,
                    f2(med),
                    series.len(),
                ));
            }
            let file = sparkline_file(label);
            sparklines.push((file.clone(), a2a_viz::sparkline(&series, 120.0, 24.0)));
            table.add_row(vec![
                (*label).to_string(),
                series.len().to_string(),
                fmt(Some(med)),
                fmt(Some(latest)),
                format!("![{label}]({file})"),
            ]);
        }
        if table.row_count() > 0 {
            md.push_str("## History trends\n\n");
            md.push_str(&table.to_markdown());
            md.push('\n');
        }
    }

    md.push_str("## Verdict\n\n");
    if regressions.is_empty() {
        md.push_str("No regressions detected.\n");
    } else {
        for r in &regressions {
            md.push_str(&format!("- **REGRESSION** {r}\n"));
        }
    }
    for k in &known {
        md.push_str(&format!("- known: {k}\n"));
    }

    PerfReport { markdown: md, sparklines, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_obs::schema::BENCH_HISTORY_SCHEMA;

    fn kernel_doc(speedup: f64, sliced: f64) -> Json {
        Json::object()
            .with("speedup", speedup)
            .with("sliced_speedup", sliced)
            .with(
                "multi",
                Json::object().with("steps_per_sec", 2.0e6).with("elapsed_us", 10.0),
            )
            .with(
                "single",
                Json::object().with("steps_per_sec", 1.0e6).with("elapsed_us", 20.0),
            )
    }

    fn history_entry(speedup: f64, sliced: f64) -> Json {
        Json::object()
            .with("schema", BENCH_HISTORY_SCHEMA)
            .with("t_ms", 1.0)
            .with(
                "kernel",
                Json::object()
                    .with("speedup", speedup)
                    .with("sliced_speedup", sliced)
                    .with("frontier_speedup", 1.6)
                    .with("multi_steps_per_sec", 2.0e6),
            )
            .with(
                "fitness",
                Json::object().with("speedup", 2.0).with("evals_per_sec", 100.0),
            )
    }

    #[test]
    fn sliced_regression_is_flagged_from_the_kernel_artifact_alone() {
        let kernel = kernel_doc(1.8, 0.4);
        let report =
            perf_report(&ReportInputs { kernel: Some(&kernel), ..ReportInputs::default() });
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].contains("sliced speedup"));
        assert!(report.markdown.contains("REGRESSION"));
    }

    #[test]
    fn frontier_regression_is_flagged_from_the_kernel_artifact_alone() {
        // A frontier kernel slower than its own dense scan is a
        // pessimisation wherever it ran — flagged without any baseline.
        let kernel = kernel_doc(1.8, 1.2).with("frontier_speedup", 0.9);
        let report =
            perf_report(&ReportInputs { kernel: Some(&kernel), ..ReportInputs::default() });
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].contains("frontier speedup"));
        // The parallel ratio is charted but never gated here (the
        // schema validator owns its worker-conditioned gate).
        let parallel = kernel_doc(1.8, 1.2).with("parallel_speedup", 0.8);
        let report =
            perf_report(&ReportInputs { kernel: Some(&parallel), ..ReportInputs::default() });
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
    }

    #[test]
    fn baselined_pessimisation_is_reported_but_does_not_gate() {
        // The bit-sliced kernel's sliced_speedup < 1 is the documented
        // §11 negative result: with a baseline that already records it
        // below 1, the report notes it without failing --check (drift
        // beyond the floor still gates via the baseline comparison).
        let base = kernel_doc(2.0, 0.6);
        let fresh = kernel_doc(1.8, 0.55);
        let report = perf_report(&ReportInputs {
            kernel: Some(&fresh),
            baseline: Some(&base),
            ..ReportInputs::default()
        });
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        assert!(report.markdown.contains("known negative result"));
        // A collapse below the floor of even that baselined ratio is
        // still a gated regression.
        let collapsed = kernel_doc(1.8, 0.2);
        let report = perf_report(&ReportInputs {
            kernel: Some(&collapsed),
            baseline: Some(&base),
            ..ReportInputs::default()
        });
        assert!(
            report.regressions.iter().any(|r| r.contains("below 70%")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn healthy_artifacts_produce_no_regressions() {
        let kernel = kernel_doc(1.8, 1.2);
        let history: Vec<Json> = (0..4).map(|_| history_entry(1.8, 1.2)).collect();
        let report = perf_report(&ReportInputs {
            kernel: Some(&kernel),
            history: &history,
            ..ReportInputs::default()
        });
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        assert!(report.markdown.contains("No regressions detected"));
        assert_eq!(report.sparklines.len(), TREND_METRICS.len());
        for (file, svg) in &report.sparklines {
            assert!(report.markdown.contains(file.as_str()), "{file} referenced");
            assert!(svg.starts_with("<svg"));
        }
    }

    #[test]
    fn history_drift_below_the_floor_is_flagged() {
        let mut history: Vec<Json> = (0..5).map(|_| history_entry(2.0, 1.2)).collect();
        history.push(history_entry(1.0, 1.2)); // 50% of the prior median
        let report =
            perf_report(&ReportInputs { history: &history, ..ReportInputs::default() });
        assert!(
            report.regressions.iter().any(|r| r.contains("history drift")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn throughput_drift_is_charted_but_not_gated() {
        // Absolute rates depend on the run scale: a --configs 10 line
        // after a --configs 20 line halves evals/s without any code
        // regressing. Only the scale-invariant ratios gate.
        let mut history: Vec<Json> = (0..4).map(|_| history_entry(2.0, 1.2)).collect();
        let small_run = Json::object()
            .with("schema", BENCH_HISTORY_SCHEMA)
            .with("t_ms", 1.0)
            .with(
                "kernel",
                Json::object()
                    .with("speedup", 2.0)
                    .with("sliced_speedup", 1.2)
                    .with("multi_steps_per_sec", 2.0e5),
            )
            .with(
                "fitness",
                Json::object().with("speedup", 2.0).with("evals_per_sec", 10.0),
            );
        history.push(small_run);
        let report =
            perf_report(&ReportInputs { history: &history, ..ReportInputs::default() });
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        assert!(report.markdown.contains("fitness evals/s"), "still charted");
    }

    #[test]
    fn baseline_floor_matches_obs_validate() {
        let base = kernel_doc(2.0, 1.5);
        let fresh = kernel_doc(1.2, 1.4); // 60% of baseline speedup
        let report = perf_report(&ReportInputs {
            kernel: Some(&fresh),
            baseline: Some(&base),
            ..ReportInputs::default()
        });
        assert!(
            report.regressions.iter().any(|r| r.contains("below 70%")),
            "{:?}",
            report.regressions
        );
        assert!(report.markdown.contains("Baseline comparison"));
    }

    #[test]
    fn quantile_table_uses_the_histogram_accessors() {
        let mut hist = a2a_obs::HistogramSnapshot::default();
        for v in 1..=100u64 {
            hist.record(v);
        }
        let snapshot = Json::object().with(
            "t_comm",
            Json::Arr(vec![Json::object()
                .with("grid", "T")
                .with("k", 8u64)
                .with("histogram", hist.to_json())]),
        );
        let report =
            perf_report(&ReportInputs { snapshot: Some(&snapshot), ..ReportInputs::default() });
        assert!(report.markdown.contains("t_comm quantiles"));
        assert!(report.markdown.contains(&hist.p99().to_string()));
    }
}

//! Integer-valued histograms with ASCII bar rendering, used for
//! communication-time distributions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A histogram over `u32` observations (e.g. communication times).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u32) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of one exact value.
    #[must_use]
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<u32> {
        self.counts.keys().next().copied()
    }

    /// Largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<u32> {
        self.counts.keys().next_back().copied()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by cumulative counts.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u32> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0;
        for (&value, &count) in &self.counts {
            cumulative += count;
            if cumulative >= target {
                return Some(value);
            }
        }
        self.max()
    }

    /// Renders the distribution as horizontal ASCII bars, bucketing into
    /// at most `max_buckets` equal-width value ranges.
    ///
    /// # Panics
    ///
    /// Panics if `max_buckets == 0`.
    #[must_use]
    pub fn render(&self, max_buckets: usize, bar_width: usize) -> String {
        assert!(max_buckets > 0, "need at least one bucket");
        let (Some(min), Some(max)) = (self.min(), self.max()) else {
            return "(empty histogram)\n".to_string();
        };
        let span = u64::from(max - min) + 1;
        let bucket_width = span.div_ceil(max_buckets as u64).max(1);
        let n_buckets = span.div_ceil(bucket_width) as usize;
        let mut buckets = vec![0u64; n_buckets];
        for (&value, &count) in &self.counts {
            buckets[(u64::from(value - min) / bucket_width) as usize] += count;
        }
        let peak = buckets.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &count) in buckets.iter().enumerate() {
            let lo = u64::from(min) + i as u64 * bucket_width;
            let hi = (lo + bucket_width - 1).min(u64::from(max));
            let bar = "#".repeat((count as f64 / peak as f64 * bar_width as f64).round() as usize);
            out.push_str(&format!("{lo:>5}-{hi:<5} |{bar:<bar_width$} {count}\n"));
        }
        out
    }
}

impl FromIterator<u32> for Histogram {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut h = Self::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u32> for Histogram {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(20, 40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let h: Histogram = [5u32, 5, 7, 9].into_iter().collect();
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(6), 0);
        assert_eq!((h.min(), h.max()), (Some(5), Some(9)));
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let h: Histogram = (1..=100u32).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.95), Some(95));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert!(h.render(10, 20).contains("empty"));
    }

    #[test]
    fn render_buckets_and_scales() {
        let mut h = Histogram::new();
        h.extend(std::iter::repeat_n(10u32, 40));
        h.record(30);
        let text = h.render(4, 20);
        assert!(text.lines().count() <= 6);
        assert!(text.contains('#'));
        // The dominant bucket gets the full bar.
        assert!(text.contains(&"#".repeat(20)), "{text}");
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn quantile_validates_input() {
        let h: Histogram = [1u32].into_iter().collect();
        let _ = h.quantile(1.5);
    }
}

//! Genome entry-usage analysis: which rows of an evolved state table
//! actually fire during simulation, and which are dead weight.
//!
//! The paper's genome has 32 (input, state) rows; evolution only shapes
//! the rows that execute. Dead rows are free mutation targets — one
//! reason mutation-only search works well here.

use a2a_fsm::Genome;
use a2a_ga::parallel_map;
use a2a_sim::{InitialConfig, World, WorldConfig};
use serde::{Deserialize, Serialize};

/// Aggregated entry-usage over a configuration set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageProfile {
    /// Usage count per flat genome index (Fig. 3's `i`).
    pub counts: Vec<u64>,
    /// Configurations simulated.
    pub configs: usize,
    /// Steps simulated in total.
    pub total_steps: u64,
}

impl UsageProfile {
    /// Flat indices that never fired (dead rows).
    #[must_use]
    pub fn dead_entries(&self) -> Vec<usize> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Fraction of all decisions taken by the `n` hottest rows.
    #[must_use]
    pub fn concentration(&self, n: usize) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.iter().take(n).sum::<u64>() as f64 / total as f64
    }
}

/// Profiles `genome` over `configs` in `env`, running each to completion
/// (or `t_max`) with usage tracking enabled.
///
/// # Panics
///
/// Panics if a configuration is invalid for the environment (the callers
/// build both from the same lattice).
#[must_use]
pub fn profile_usage(
    env: &WorldConfig,
    genome: &Genome,
    configs: &[InitialConfig],
    t_max: u32,
    threads: usize,
) -> UsageProfile {
    let per_config = parallel_map(configs, threads, |init| {
        let mut world =
            World::new(env, genome.clone(), init).expect("valid configuration");
        world.enable_usage_tracking();
        while !world.all_informed() && world.time() < t_max {
            world.step();
        }
        (world.usage().expect("tracking enabled").to_vec(), u64::from(world.time()))
    });
    let len = genome.spec().entry_count();
    let mut counts = vec![0u64; len];
    let mut total_steps = 0u64;
    for (usage, steps) in &per_config {
        for (slot, &c) in counts.iter_mut().zip(usage) {
            *slot += c;
        }
        total_steps += steps;
    }
    UsageProfile { counts, configs: configs.len(), total_steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_fsm::{best_t_agent, Entry};
    use a2a_grid::GridKind;
    use a2a_sim::paper_config_set;

    fn profile(n_cfg: usize) -> (WorldConfig, Vec<InitialConfig>, UsageProfile) {
        let env = WorldConfig::paper(GridKind::Triangulate, 16);
        let configs =
            paper_config_set(env.lattice, env.kind, 8, n_cfg, 77).unwrap();
        let p = profile_usage(&env, &best_t_agent(), &configs, 1000, 1);
        (env, configs, p)
    }

    #[test]
    fn counts_are_consistent() {
        let (_, configs, p) = profile(8);
        assert_eq!(p.configs, configs.len());
        assert_eq!(p.counts.len(), 32);
        // Every step decides one row per agent (8 agents).
        assert_eq!(p.counts.iter().sum::<u64>(), p.total_steps * 8);
        // A handful of rows dominates the behaviour.
        assert!(p.concentration(8) > 0.5, "{:?}", p.concentration(8));
    }

    /// Mutating a row that never fires cannot change any outcome on the
    /// same configuration set — dead rows are behaviourally neutral.
    #[test]
    fn dead_entries_are_behaviourally_neutral() {
        let (env, configs, p) = profile(6);
        let genome = best_t_agent();
        let Some(&dead) = p.dead_entries().first() else {
            // The published agent may use all rows on this set; the
            // property is then vacuous for it.
            return;
        };
        let mut mutated = genome.clone();
        let e = mutated.entry_mut(dead);
        *e = Entry {
            next_state: (e.next_state + 1) % 4,
            action: a2a_fsm::Action::new(
                (e.action.turn + 1) % 4,
                !e.action.mv,
                1 - e.action.set_color,
            ),
        };
        for init in &configs {
            let a = a2a_sim::simulate(&env, genome.clone(), init, 1000).unwrap();
            let b = a2a_sim::simulate(&env, mutated.clone(), init, 1000).unwrap();
            assert_eq!(a, b, "dead row must not matter");
        }
    }
}

//! ASCII line charts for terminal reproduction of the paper's figures
//! (Fig. 5's two-series density plot in particular).

use std::fmt;

/// X-axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XScale {
    /// Linear positions.
    Linear,
    /// Logarithmic positions (base 2) — natural for the paper's agent
    /// counts `2, 4, 8, …, 256`.
    Log2,
}

/// A plotted series: a label, a plotting glyph and the data points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Mark used on the canvas (e.g. `T` / `S` like the paper's curves).
    pub glyph: char,
    /// `(x, y)` points, in any order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Self {
        Self { label: label.into(), glyph, points }
    }
}

/// A fixed-size ASCII chart.
///
/// # Examples
///
/// ```
/// use a2a_analysis::{AsciiChart, Series, XScale};
///
/// let chart = AsciiChart::new(40, 10, XScale::Log2)
///     .series(Series::new("T-grid", 'T', vec![(2.0, 58.4), (4.0, 78.3), (8.0, 58.7)]))
///     .series(Series::new("S-grid", 'S', vec![(2.0, 82.8), (4.0, 116.1), (8.0, 90.9)]));
/// let out = chart.to_string();
/// assert!(out.contains('T') && out.contains('S'));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    x_scale: XScale,
    series: Vec<Series>,
}

impl AsciiChart {
    /// Creates an empty chart of the given canvas size (excluding axis
    /// labels).
    ///
    /// # Panics
    ///
    /// Panics if `width < 8` or `height < 4` (too small to plot).
    #[must_use]
    pub fn new(width: usize, height: usize, x_scale: XScale) -> Self {
        assert!(width >= 8 && height >= 4, "canvas too small to plot");
        Self { width, height, x_scale, series: Vec::new() }
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    fn x_pos(&self, x: f64) -> f64 {
        match self.x_scale {
            XScale::Linear => x,
            XScale::Log2 => x.max(f64::MIN_POSITIVE).log2(),
        }
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .map(|&(x, y)| (self.x_pos(x), y));
        let first = pts.next()?;
        let mut b = (first.0, first.0, first.1, first.1);
        for (x, y) in pts {
            b = (b.0.min(x), b.1.max(x), b.2.min(y), b.3.max(y));
        }
        Some(b)
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Some((x_min, x_max, y_min, y_max)) = self.bounds() else {
            return writeln!(f, "(empty chart)");
        };
        let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
        let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);
        let mut canvas = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                let cx = ((self.x_pos(x) - x_min) / x_span * (self.width - 1) as f64).round()
                    as usize;
                let cy = ((y - y_min) / y_span * (self.height - 1) as f64).round() as usize;
                // y grows upward: row 0 is the top of the canvas.
                canvas[self.height - 1 - cy][cx.min(self.width - 1)] = s.glyph;
            }
        }
        for (r, row) in canvas.iter().enumerate() {
            let y_label = if r == 0 {
                format!("{y_max:>8.1}")
            } else if r == self.height - 1 {
                format!("{y_min:>8.1}")
            } else {
                " ".repeat(8)
            };
            writeln!(f, "{y_label} |{}", row.iter().collect::<String>())?;
        }
        writeln!(f, "{} +{}", " ".repeat(8), "-".repeat(self.width))?;
        let x_lo = match self.x_scale {
            XScale::Linear => x_min,
            XScale::Log2 => x_min.exp2(),
        };
        let x_hi = match self.x_scale {
            XScale::Linear => x_max,
            XScale::Log2 => x_max.exp2(),
        };
        writeln!(
            f,
            "{}{x_lo:<10.0}{:>width$.0}",
            " ".repeat(10),
            x_hi,
            width = self.width.saturating_sub(10)
        )?;
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|s| format!("{} = {}", s.glyph, s.label))
            .collect();
        writeln!(f, "{}{}", " ".repeat(10), legend.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AsciiChart {
        AsciiChart::new(40, 10, XScale::Log2)
            .series(Series::new("T-grid", 'T', vec![(2.0, 58.4), (32.0, 28.1), (256.0, 9.0)]))
            .series(Series::new("S-grid", 'S', vec![(2.0, 82.8), (32.0, 42.9), (256.0, 15.0)]))
    }

    #[test]
    fn renders_marks_axes_and_legend() {
        let out = sample().to_string();
        assert!(out.contains('T') && out.contains('S'));
        assert!(out.contains("T = T-grid"));
        assert!(out.contains('|') && out.contains('+'));
        // y-axis extremes labelled.
        assert!(out.contains("82.8"));
        assert!(out.contains("9.0"));
    }

    #[test]
    fn log_scale_spreads_powers_of_two_evenly() {
        let chart = AsciiChart::new(41, 5, XScale::Log2)
            .series(Series::new("p", '*', vec![(2.0, 1.0), (16.0, 1.0), (128.0, 1.0)]));
        let out = chart.to_string();
        // The three marks sit on the bottom row, evenly spaced in log-x:
        // columns 0, 20 and 40 of the canvas.
        let bottom = out.lines().nth(4).unwrap();
        let cols: Vec<usize> = bottom
            .char_indices()
            .filter(|&(_, c)| c == '*')
            .map(|(i, _)| i - bottom.find('|').unwrap() - 1)
            .collect();
        assert_eq!(cols, vec![0, 20, 40]);
    }

    #[test]
    fn empty_chart_is_harmless() {
        let out = AsciiChart::new(20, 5, XScale::Linear).to_string();
        assert!(out.contains("empty"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let _ = AsciiChart::new(4, 2, XScale::Linear);
    }
}

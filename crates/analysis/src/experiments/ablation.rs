//! E12–E14 — ablations of the paper's design choices:
//!
//! * **colours** (E12): suppressing colour writes isolates the indirect
//!   "pheromone" communication the paper credits with large speed-ups;
//! * **initial control states** (E13): the paper's reliability mechanism
//!   (`ID mod 2`) versus uniform starts, on the adversarial manual
//!   configurations;
//! * **conflict priority and turn set** (E14): lowest- vs. highest-ID
//!   arbitration, and the restricted T turn set vs. a naive full-set
//!   reinterpretation.

use crate::experiments::density::{run_series_in, DensityExperiment, GridSeries};
use crate::transform::{remap_to_full_turns, reinterpret_turns_naive, suppress_colors};
use a2a_fsm::best_agent;
use a2a_ga::parallel_map;
use a2a_grid::GridKind;
use a2a_sim::{
    simulate, ConflictPolicy, InitStatePolicy, InitialConfig, SimError, WorldConfig,
};
use serde::{Deserialize, Serialize};

/// A labelled variant outcome within an ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variant {
    /// Human-readable variant name.
    pub label: String,
    /// Series over the experiment's densities.
    pub series: GridSeries,
}

/// E12: the paper's best agents with and without colour writes.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn colors_ablation(exp: &DensityExperiment) -> Result<Vec<Variant>, SimError> {
    let mut variants = Vec::new();
    for kind in [GridKind::Triangulate, GridKind::Square] {
        let cfg = WorldConfig::paper(kind, exp.m);
        let genome = best_agent(kind);
        variants.push(Variant {
            label: format!("{} with colors", kind.label()),
            series: run_series_in(&cfg, &genome, exp)?,
        });
        variants.push(Variant {
            label: format!("{} colors suppressed", kind.label()),
            series: run_series_in(&cfg, &suppress_colors(&genome), exp)?,
        });
    }
    Ok(variants)
}

/// Paired colour comparison at one density: restricted to configurations
/// *both* variants solve, removing the survivor bias that makes the
/// colourless means in [`colors_ablation`] look deceptively low (the
/// colourless agent only solves the easy fields).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedColors {
    /// Grid family.
    pub kind: GridKind,
    /// Agent count.
    pub agents: usize,
    /// Configurations solved by both variants.
    pub both_solved: usize,
    /// Total configurations.
    pub total: usize,
    /// Mean time of the coloured agent on the common set.
    pub mean_with: f64,
    /// Mean time of the colour-suppressed agent on the common set.
    pub mean_without: f64,
}

impl PairedColors {
    /// Colour speed-up factor on the common set (`without / with`).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.mean_without / self.mean_with
    }
}

/// E12 (paired): per-configuration comparison of the published agent with
/// and without colour writes, on the same configuration stream.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn colors_paired(
    kind: GridKind,
    k: usize,
    n_random: usize,
    seed: u64,
    t_max: u32,
    threads: usize,
) -> Result<PairedColors, SimError> {
    let cfg = WorldConfig::paper(kind, 16);
    let configs = a2a_sim::paper_config_set(cfg.lattice, kind, k, n_random, seed)?;
    let with = best_agent(kind);
    let without = suppress_colors(&with);
    let pairs = parallel_map(&configs, threads, |init| {
        let a = simulate(&cfg, with.clone(), init, t_max).expect("valid construction");
        let b = simulate(&cfg, without.clone(), init, t_max).expect("valid construction");
        (a.t_comm, b.t_comm)
    });
    let common: Vec<(u32, u32)> = pairs
        .iter()
        .filter_map(|&(a, b)| Some((a?, b?)))
        .collect();
    let n = common.len().max(1) as f64;
    Ok(PairedColors {
        kind,
        agents: k,
        both_solved: common.len(),
        total: pairs.len(),
        mean_with: common.iter().map(|&(a, _)| f64::from(a)).sum::<f64>() / n,
        mean_without: common.iter().map(|&(_, b)| f64::from(b)).sum::<f64>() / n,
    })
}

/// Success statistics of one initial-state policy on one configuration
/// class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Which policy.
    pub policy: String,
    /// Successes on the three manual (adversarial) configurations.
    pub manual_successes: usize,
    /// Manual configurations available.
    pub manual_total: usize,
    /// Successes on the random configurations.
    pub random_successes: usize,
    /// Random configurations evaluated.
    pub random_total: usize,
}

/// E13: initial-state policies on adversarial vs. random configurations.
///
/// The paper: "we could not find uniform reliable agents when all FSMs
/// started in control state 0 or 3 … we were able to find reliable
/// agents when we started some of the agents in state 0 and the others in
/// state 1."
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn init_state_ablation(
    kind: GridKind,
    k: usize,
    n_random: usize,
    seed: u64,
    t_max: u32,
    threads: usize,
) -> Result<Vec<PolicyOutcome>, SimError> {
    let genome = best_agent(kind);
    let base = WorldConfig::paper(kind, 16);
    let manual: Vec<InitialConfig> = [
        InitialConfig::queue_east(base.lattice, k),
        InitialConfig::queue_west(base.lattice, kind, k),
        InitialConfig::diagonal_spaced(base.lattice, kind, k),
    ]
    .into_iter()
    .flatten()
    .collect();
    let random = a2a_sim::paper_config_set(base.lattice, kind, k, n_random, seed)?
        [..n_random]
        .to_vec();

    let policies = [
        ("ID mod 2 (paper)".to_string(), InitStatePolicy::IdParity),
        ("uniform state 0".to_string(), InitStatePolicy::Uniform(0)),
        ("uniform state 3".to_string(), InitStatePolicy::Uniform(3)),
    ];
    let mut outcomes = Vec::new();
    for (label, policy) in policies {
        let cfg = WorldConfig { init_states: policy, ..base.clone() };
        let count = |set: &[InitialConfig]| -> usize {
            parallel_map(set, threads, |init| {
                simulate(&cfg, genome.clone(), init, t_max)
                    .expect("valid construction")
                    .is_successful()
            })
            .into_iter()
            .filter(|&s| s)
            .count()
        };
        outcomes.push(PolicyOutcome {
            policy: label,
            manual_successes: count(&manual),
            manual_total: manual.len(),
            random_successes: count(&random),
            random_total: random.len(),
        });
    }
    Ok(outcomes)
}

/// E14a: conflict-arbitration priority (lowest vs. highest ID).
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn conflict_ablation(kind: GridKind, exp: &DensityExperiment) -> Result<Vec<Variant>, SimError> {
    let genome = best_agent(kind);
    let mut variants = Vec::new();
    for (label, policy) in [
        ("lowest ID wins (paper)", ConflictPolicy::LowestId),
        ("highest ID wins", ConflictPolicy::HighestId),
    ] {
        let cfg = WorldConfig { conflict: policy, ..WorldConfig::paper(kind, exp.m) };
        variants.push(Variant {
            label: format!("{} {label}", kind.label()),
            series: run_series_in(&cfg, &genome, exp)?,
        });
    }
    Ok(variants)
}

/// E14b: the restricted T turn set. Compares the evolved T-agent, its
/// behaviour-preserving re-expression over the full turn set (sanity: must
/// be identical) and the naive reinterpretation (codes keep their numeric
/// deltas), which perturbs every 180°/−60° turn.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn turn_set_ablation(exp: &DensityExperiment) -> Result<Vec<Variant>, SimError> {
    let cfg = WorldConfig::paper(GridKind::Triangulate, exp.m);
    let genome = best_agent(GridKind::Triangulate);
    let variants = [
        ("restricted turns (paper)".to_string(), genome.clone()),
        ("full-set remap (equivalent)".to_string(), remap_to_full_turns(&genome)),
        ("naive reinterpretation".to_string(), reinterpret_turns_naive(&genome)),
    ];
    variants
        .into_iter()
        .map(|(label, g)| {
            Ok(Variant { label, series: run_series_in(&cfg, &g, exp)? })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DensityExperiment {
        DensityExperiment {
            m: 16,
            agent_counts: vec![8],
            n_random: 10,
            seed: 31,
            t_max: 3000,
            threads: 2,
        }
    }

    #[test]
    fn colors_help_substantially() {
        let variants = colors_ablation(&tiny()).unwrap();
        assert_eq!(variants.len(), 4);
        // With/without pairs per grid: colourless is slower (or fails).
        for pair in variants.chunks(2) {
            let with = &pair[0].series.points[0];
            let without = &pair[1].series.points[0];
            let with_time = with.times.mean;
            // Colourless agents may fail some configs; compare only when
            // both succeed somewhere.
            if without.successes > 0 {
                assert!(
                    without.times.mean > with_time || without.successes < with.successes,
                    "{}: with {with:?} vs without {without:?}",
                    pair[1].label
                );
            }
        }
    }

    #[test]
    fn uniform_states_fail_adversarial_configs() {
        let outcomes =
            init_state_ablation(GridKind::Square, 8, 6, 5, 1500, 2).unwrap();
        let paper = &outcomes[0];
        assert_eq!(paper.manual_successes, paper.manual_total, "ID mod 2 solves manual configs");
        let uniform0 = &outcomes[1];
        assert!(
            uniform0.manual_successes < uniform0.manual_total,
            "uniform state 0 should break on symmetric configs: {uniform0:?}"
        );
    }

    #[test]
    fn full_set_remap_is_behaviour_preserving() {
        let variants = turn_set_ablation(&tiny()).unwrap();
        let paper = &variants[0].series.points[0];
        let remap = &variants[1].series.points[0];
        assert_eq!(paper, remap, "re-expression must not change any outcome");
    }

    #[test]
    fn conflict_ablation_runs_both_policies() {
        let variants = conflict_ablation(GridKind::Triangulate, &tiny()).unwrap();
        assert_eq!(variants.len(), 2);
        for v in &variants {
            assert!(v.series.points[0].successes > 0, "{}", v.label);
        }
    }
}

#[cfg(test)]
mod paired_tests {
    use super::*;

    #[test]
    fn paired_colors_report_is_consistent() {
        let r = colors_paired(GridKind::Triangulate, 8, 12, 5, 2000, 1).unwrap();
        assert_eq!(r.total, 15);
        assert!(r.both_solved <= r.total);
        if r.both_solved > 0 {
            assert!(r.mean_with > 0.0);
            assert!(r.speedup().is_finite());
        }
    }
}

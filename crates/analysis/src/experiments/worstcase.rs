//! E24 — adversarial worst-case search: hill-climbing over initial
//! configurations to *maximise* the communication time.
//!
//! Random sampling (the paper's protocol) characterises the average case;
//! the E22 exhaustive sweep settles `k = 2`. For larger `k` the space is
//! astronomically big, so this experiment searches it adversarially:
//! local moves (relocate one agent, re-aim one agent) accepted when they
//! slow the system down. The resulting configurations bound the published
//! agents' worst observed behaviour far more sharply than sampling.

use a2a_fsm::best_agent;
use a2a_grid::{Dir, GridKind, Pos};
use a2a_sim::{BatchRunner, InitialConfig, SimError, WorldConfig};
use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of one adversarial search run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorstCase {
    /// Grid family.
    pub kind: GridKind,
    /// Agent count.
    pub agents: usize,
    /// The hardest configuration found.
    pub config: InitialConfig,
    /// Its communication time (`None` would mean an unsolved
    /// configuration was found — a reliability refutation).
    pub time: Option<u32>,
    /// Time of the initial random configuration, for comparison.
    pub initial_time: u32,
    /// Accepted hill-climbing moves.
    pub improvements: usize,
}

/// Hill-climbs for `iterations` local moves from a seeded random start.
///
/// A move relocates one random agent to a random free cell or re-aims one
/// random agent; it is kept when the simulated time does not decrease
/// (plateau moves are accepted to escape flat regions). An unsolved
/// configuration (within `t_max`) terminates the search immediately — it
/// would refute reliability, which is the most interesting outcome.
///
/// # Errors
///
/// Propagates world-construction failures.
pub fn adversarial_search(
    kind: GridKind,
    k: usize,
    iterations: usize,
    seed: u64,
    t_max: u32,
) -> Result<WorstCase, SimError> {
    let cfg = WorldConfig::paper(kind, 16);
    // The search re-simulates thousands of candidates against one genome:
    // compile it once and reuse the kernel environment throughout.
    let runner = BatchRunner::from_genome(&cfg, best_agent(kind), t_max)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut current = InitialConfig::random(cfg.lattice, kind, k, &[], &mut rng)?;
    let run = |c: &InitialConfig| -> Result<Option<u32>, SimError> {
        Ok(runner.outcome_for(c)?.t_comm)
    };
    let Some(initial_time) = run(&current)? else {
        return Ok(WorstCase {
            kind,
            agents: k,
            config: current,
            time: None,
            initial_time: 0,
            improvements: 0,
        });
    };
    let mut best_time = initial_time;
    let mut improvements = 0usize;

    for _ in 0..iterations {
        let candidate = perturb(&current, &cfg, kind, &mut rng);
        match run(&candidate)? {
            None => {
                return Ok(WorstCase {
                    kind,
                    agents: k,
                    config: candidate,
                    time: None,
                    initial_time,
                    improvements,
                });
            }
            Some(t) if t >= best_time => {
                if t > best_time {
                    improvements += 1;
                }
                best_time = t;
                current = candidate;
            }
            Some(_) => {}
        }
    }
    Ok(WorstCase {
        kind,
        agents: k,
        config: current,
        time: Some(best_time),
        initial_time,
        improvements,
    })
}

/// One local move: relocate or re-aim a random agent.
fn perturb<R: Rng + ?Sized>(
    config: &InitialConfig,
    cfg: &WorldConfig,
    kind: GridKind,
    rng: &mut R,
) -> InitialConfig {
    let mut placements: Vec<(Pos, Dir)> = config.placements().to_vec();
    let victim = rng.random_range(0..placements.len());
    if rng.random_bool(0.5) {
        // Relocate to a random free cell.
        let occupied: Vec<Pos> = placements.iter().map(|&(p, _)| p).collect();
        loop {
            let pos = cfg.lattice.pos_at(rng.random_range(0..cfg.lattice.len()));
            if !occupied.contains(&pos) {
                placements[victim].0 = pos;
                break;
            }
        }
    } else {
        placements[victim].1 = Dir::new(rng.random_range(0..kind.dir_count()));
    }
    InitialConfig::new(placements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_never_returns_something_easier_than_its_start() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let w = adversarial_search(kind, 4, 30, 7, 5000).unwrap();
            let t = w.time.expect("published agents stay reliable under this search");
            assert!(t >= w.initial_time, "{kind}: {w:?}");
            w.config.validate(WorldConfig::paper(kind, 16).lattice, kind).unwrap();
        }
    }

    #[test]
    fn found_cases_exceed_typical_random_times() {
        // The Table 1 mean for 4 T-agents is ~77; even a short search
        // should push well beyond it.
        let w = adversarial_search(GridKind::Triangulate, 4, 60, 11, 5000).unwrap();
        assert!(w.time.unwrap() > 90, "{w:?}");
        assert!(w.improvements > 0);
    }

    #[test]
    fn perturbations_keep_configurations_valid() {
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut c = InitialConfig::random(cfg.lattice, cfg.kind, 8, &[], &mut rng).unwrap();
        for _ in 0..200 {
            c = perturb(&c, &cfg, GridKind::Square, &mut rng);
            c.validate(cfg.lattice, GridKind::Square).unwrap();
        }
    }
}

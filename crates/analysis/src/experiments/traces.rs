//! E7/E8 — Fig. 6 and Fig. 7: two-agent simulations showing how colour
//! traces build "streets" (S-grid) and "honeycomb-like networks" (T-grid).
//!
//! The paper's exact initial configurations are not machine-readable from
//! the figures, so [`find_two_agent_config`] searches a seeded stream of
//! random two-agent fields for one whose communication time matches the
//! figure (114 steps in S, 44 in T), then replays it with snapshots.

use a2a_fsm::best_agent;
use a2a_grid::GridKind;
use a2a_sim::{
    render_snapshot, run_to_completion, InitialConfig, RunOutcome, SimError, World, WorldConfig,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Fig. 6's headline: the special S-configuration needs 114 steps.
pub const FIG6_S_TIME: u32 = 114;

/// Fig. 7's headline: the T-agents need only 44 steps.
pub const FIG7_T_TIME: u32 = 44;

/// A replayed trace: the snapshots and the run outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceResult {
    /// The configuration that was traced.
    pub init: InitialConfig,
    /// Fig. 6/7-style snapshots at the requested times (and at the end).
    pub snapshots: Vec<String>,
    /// Final outcome.
    pub outcome: RunOutcome,
}

/// Runs the paper's best agent for `kind` on `init`, capturing snapshots
/// at `times` (plus the final state).
///
/// # Errors
///
/// Propagates world-construction failures.
pub fn run_trace(
    kind: GridKind,
    init: &InitialConfig,
    times: &[u32],
    t_max: u32,
) -> Result<TraceResult, SimError> {
    let cfg = WorldConfig::paper(kind, 16);
    let mut world = World::new(&cfg, best_agent(kind), init)?;
    let mut snapshots = Vec::new();
    loop {
        if times.contains(&world.time()) {
            snapshots.push(render_snapshot(&world));
        }
        if world.all_informed() || world.time() >= t_max {
            break;
        }
        world.step();
    }
    snapshots.push(render_snapshot(&world));
    let outcome = run_to_completion(&mut world, t_max);
    Ok(TraceResult { init: init.clone(), snapshots, outcome })
}

/// Searches a seeded stream of random two-agent 16×16 configurations for
/// the one whose communication time is closest to `target` (exact match
/// returns early). Returns the configuration and its time.
///
/// # Panics
///
/// Panics if `max_tries == 0`.
#[must_use]
pub fn find_two_agent_config(
    kind: GridKind,
    target: u32,
    max_tries: usize,
    seed: u64,
) -> (InitialConfig, u32) {
    assert!(max_tries > 0, "need at least one attempt");
    let cfg = WorldConfig::paper(kind, 16);
    let genome = best_agent(kind);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<(InitialConfig, u32)> = None;
    for _ in 0..max_tries {
        let init = InitialConfig::random(cfg.lattice, kind, 2, &[], &mut rng)
            .expect("two agents always fit a 16x16 field");
        let out = a2a_sim::simulate(&cfg, genome.clone(), &init, 2000)
            .expect("valid world construction");
        let Some(t) = out.t_comm else { continue };
        if t == target {
            return (init, t);
        }
        let better = best
            .as_ref()
            .is_none_or(|(_, bt)| t.abs_diff(target) < bt.abs_diff(target));
        if better {
            best = Some((init, t));
        }
    }
    best.expect("at least one successful two-agent run in the stream")
}

/// Reproduces Fig. 6: a two-agent S-grid trace targeting 114 steps, with
/// snapshots at the paper's times `t = 0, 56` and the end.
///
/// # Errors
///
/// Propagates world-construction failures.
pub fn fig6(seed: u64, max_tries: usize) -> Result<TraceResult, SimError> {
    let (init, t) = find_two_agent_config(GridKind::Square, FIG6_S_TIME, max_tries, seed);
    run_trace(GridKind::Square, &init, &[0, t / 2], 2000)
}

/// Reproduces Fig. 7: a two-agent T-grid trace targeting 44 steps, with
/// snapshots at `t = 0, 13` (the paper's honeycomb snapshot) and the end.
///
/// # Errors
///
/// Propagates world-construction failures.
pub fn fig7(seed: u64, max_tries: usize) -> Result<TraceResult, SimError> {
    let (init, _) = find_two_agent_config(GridKind::Triangulate, FIG7_T_TIME, max_tries, seed);
    run_trace(GridKind::Triangulate, &init, &[0, 13], 2000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_finds_exact_or_close_time() {
        let (_, t) = find_two_agent_config(GridKind::Triangulate, FIG7_T_TIME, 300, 3);
        assert!(t.abs_diff(FIG7_T_TIME) <= 5, "got {t}");
    }

    #[test]
    fn trace_snapshots_include_start_and_end() {
        let (init, t) = find_two_agent_config(GridKind::Square, 60, 100, 5);
        let trace = run_trace(GridKind::Square, &init, &[0], 2000).unwrap();
        assert!(trace.snapshots.len() >= 2);
        assert!(trace.snapshots[0].contains("t=0"));
        assert_eq!(trace.outcome.t_comm, Some(t));
        // Colours appear by the end of the run.
        let last = trace.snapshots.last().unwrap();
        assert!(last.contains("colors"));
        assert!(last.contains('1'), "agents must have set colours");
    }

    #[test]
    fn agents_revisit_cells_forming_streets() {
        let (init, _) = find_two_agent_config(GridKind::Square, 100, 100, 7);
        let cfg = WorldConfig::paper(GridKind::Square, 16);
        let mut world = World::new(&cfg, best_agent(GridKind::Square), &init).unwrap();
        let _ = run_to_completion(&mut world, 2000);
        let max_visits = world.visited().iter().max().copied().unwrap_or(0);
        assert!(max_visits >= 2, "street cells are travelled repeatedly: {max_visits}");
    }
}

//! E2/E3 — Fig. 2 and Eq. (1)–(3): distance maps, diameters, mean
//! distances and the closed-form T/S ratios.

use crate::table::{f2, f3, TextTable};
use a2a_grid::{
    bfs_distances, diameter_formula, mean_distance_formula, survey_from, GridKind, Lattice, Pos,
};
use serde::{Deserialize, Serialize};

/// Distance survey of one grid kind at one size (half of Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceReport {
    /// Grid kind.
    pub kind: GridKind,
    /// Network "size" `n` (extent `2^n`).
    pub n: u32,
    /// Exact diameter (BFS).
    pub diameter: u32,
    /// Exact mean distance (BFS).
    pub mean: f64,
    /// Closed-form diameter, Eq. (1).
    pub diameter_formula: f64,
    /// Closed-form mean distance, Eq. (2).
    pub mean_formula: f64,
    /// Number of antipodal nodes from the centre cell.
    pub antipodal_count: usize,
    /// ASCII distance map from the centre cell (Fig. 2 style).
    pub map: String,
}

/// Runs the Fig. 2 survey for one kind at size `n` from the centre cell.
///
/// # Panics
///
/// Panics if `n > 15` (extent would overflow `u16`).
#[must_use]
pub fn survey(kind: GridKind, n: u32) -> DistanceReport {
    let lattice = Lattice::torus_of_size(n);
    let center = Pos::new(lattice.width() / 2 - 1, lattice.height() / 2 - 1);
    let s = survey_from(lattice, kind, center);
    let dist = bfs_distances(lattice, kind, center);
    let mut map = String::new();
    for y in 0..lattice.height() {
        for x in 0..lattice.width() {
            let d = dist[lattice.index_of(Pos::new(x, y))];
            if Pos::new(x, y) == center {
                map.push_str(" *");
            } else {
                map.push_str(&format!("{d:>2}"));
            }
        }
        map.push('\n');
    }
    DistanceReport {
        kind,
        n,
        diameter: s.eccentricity,
        mean: s.mean,
        diameter_formula: diameter_formula(kind, n),
        mean_formula: mean_distance_formula(kind, n),
        antipodal_count: s.antipodals.len(),
        map,
    }
}

/// The Eq. (1)–(3) formula table over a range of sizes: exact vs. closed
/// form vs. ratios.
#[must_use]
pub fn formula_table(sizes: std::ops::RangeInclusive<u32>) -> TextTable {
    let mut table = TextTable::new(vec![
        "n", "N", "D_S", "D_T", "D_T/S", "mean_S", "mean_T", "mean_T/S",
    ]);
    for n in sizes {
        let s = survey(GridKind::Square, n);
        let t = survey(GridKind::Triangulate, n);
        table.add_row(vec![
            n.to_string(),
            (1u64 << (2 * n)).to_string(),
            s.diameter.to_string(),
            t.diameter.to_string(),
            f3(f64::from(t.diameter) / f64::from(s.diameter)),
            f2(s.mean),
            f2(t.mean),
            f3(t.mean / s.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_values_reproduced() {
        // Fig. 2 (n = 3): D_S = 8, mean_S = 4; D_T = 5, mean_T ≈ 3.09.
        let s = survey(GridKind::Square, 3);
        assert_eq!(s.diameter, 8);
        assert!((s.mean - 4.0).abs() < 1e-12);
        let t = survey(GridKind::Triangulate, 3);
        assert_eq!(t.diameter, 5);
        assert!((t.mean - 3.09).abs() < 0.02);
    }

    #[test]
    fn formulas_match_bfs_for_diameters() {
        for n in 1..=5 {
            for kind in [GridKind::Square, GridKind::Triangulate] {
                let r = survey(kind, n);
                assert_eq!(f64::from(r.diameter), r.diameter_formula, "n={n} {kind}");
            }
        }
    }

    #[test]
    fn map_has_field_shape_and_marks_center() {
        let r = survey(GridKind::Triangulate, 3);
        assert_eq!(r.map.lines().count(), 8);
        assert_eq!(r.map.matches('*').count(), 1);
        // Maximum digit in the map equals the diameter.
        let max_digit = r
            .map
            .split_whitespace()
            .filter_map(|t| t.parse::<u32>().ok())
            .max()
            .unwrap();
        assert_eq!(max_digit, r.diameter);
    }

    #[test]
    fn formula_table_shows_ratio_convergence() {
        let table = formula_table(2..=6);
        assert_eq!(table.row_count(), 5);
        let text = table.to_string();
        assert!(text.contains("D_T/S"), "{text}");
    }

    #[test]
    fn square_antipodal_is_unique() {
        let s = survey(GridKind::Square, 3);
        assert_eq!(s.antipodal_count, 1);
    }
}

//! E23 — field-size scaling: the T/S ratio across growing tori at fixed
//! agent density.
//!
//! The paper's explanation of the speed-up is the diameter ratio
//! `D^{T/S} ≈ 2/3` (Eq. 3), which is size-independent — so the measured
//! `t_comm` ratio should stay near 2/3 as the field grows. The paper
//! only probes 16×16 and one 33×33 point; this experiment sweeps sizes
//! at constant density (k ∝ N).

use crate::experiments::density::{run_series, DensityExperiment, DensityPoint};
use a2a_fsm::best_agent;
use a2a_grid::{diameter, GridKind, Lattice};
use a2a_sim::SimError;
use serde::{Deserialize, Serialize};

/// One field size's T/S comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Field extent `m` (field is `m × m`).
    pub m: u16,
    /// Number of agents (constant density).
    pub agents: usize,
    /// T-grid results.
    pub t: DensityPoint,
    /// S-grid results.
    pub s: DensityPoint,
    /// Diameter ratio `D_T / D_S` at this size (the Eq. 3 prediction).
    pub diameter_ratio: f64,
}

impl ScalePoint {
    /// Measured mean-time ratio `T/S`.
    #[must_use]
    pub fn time_ratio(&self) -> f64 {
        self.t.times.mean / self.s.times.mean
    }
}

/// Sweeps field extents at a fixed agent density (`density` = agents per
/// cell; the paper's 16 agents on 16×16 is `1/16`).
///
/// # Errors
///
/// Propagates configuration-set construction failures.
///
/// # Panics
///
/// Panics if the density yields zero agents for some extent.
pub fn scaling_sweep(
    extents: &[u16],
    density: f64,
    n_random: usize,
    seed: u64,
    t_max: u32,
    threads: usize,
) -> Result<Vec<ScalePoint>, SimError> {
    let mut points = Vec::with_capacity(extents.len());
    for &m in extents {
        let cells = usize::from(m) * usize::from(m);
        let k = ((cells as f64 * density).round() as usize).max(1);
        let exp = DensityExperiment {
            m,
            agent_counts: vec![k],
            n_random,
            seed,
            t_max,
            threads,
        };
        let t = run_series(GridKind::Triangulate, &best_agent(GridKind::Triangulate), &exp)?
            .points
            .remove(0);
        let s = run_series(GridKind::Square, &best_agent(GridKind::Square), &exp)?
            .points
            .remove(0);
        let lattice = Lattice::torus(m, m);
        points.push(ScalePoint {
            m,
            agents: k,
            t,
            s,
            diameter_ratio: f64::from(diameter(lattice, GridKind::Triangulate))
                / f64::from(diameter(lattice, GridKind::Square)),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_stays_in_band_across_sizes() {
        let points = scaling_sweep(&[8, 16], 1.0 / 16.0, 10, 5, 5000, 2).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].agents, 4, "8x8 at density 1/16");
        assert_eq!(points[1].agents, 16);
        for p in &points {
            assert!(p.t.is_complete() && p.s.is_complete(), "m={}", p.m);
            let r = p.time_ratio();
            // Small fields + tiny samples vary widely; the binding
            // claims are completeness and the T < S ordering.
            assert!((0.2..1.0).contains(&r), "m={}: ratio {r}", p.m);
            assert!(p.t.times.mean < p.s.times.mean);
        }
        // Times grow with the field.
        assert!(points[1].t.times.mean > points[0].t.times.mean);
    }
}

//! E19 — information-diffusion profiles: the mean fraction of informed
//! agents as a function of time, T vs. S. The paper reports only the
//! completion time `t_comm`; the profile shows *how* the triangulate
//! grid's advantage accrues (earlier first meetings *and* a faster final
//! consolidation phase).

use a2a_fsm::best_agent;
use a2a_ga::parallel_map;
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, run_with_profile, SimError, World, WorldConfig};
use serde::{Deserialize, Serialize};

/// Mean informed-fraction curve of one grid kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffusionProfile {
    /// Grid family.
    pub kind: GridKind,
    /// Agent count.
    pub agents: usize,
    /// `fraction[t]` = mean fraction of informed agents after step `t`
    /// (index 0 = right after placement). Runs that finish early
    /// contribute 1.0 to later indices.
    pub fraction: Vec<f64>,
    /// Configurations averaged.
    pub configs: usize,
}

impl DiffusionProfile {
    /// First step at which the mean informed fraction reaches `q`
    /// (e.g. 0.5 for the median-information time), if ever.
    #[must_use]
    pub fn time_to_fraction(&self, q: f64) -> Option<u32> {
        self.fraction.iter().position(|&f| f >= q).map(|t| t as u32)
    }
}

/// Averages informed-fraction curves for the published best agent of
/// `kind` over a seeded configuration set.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn diffusion_profile(
    kind: GridKind,
    k: usize,
    n_random: usize,
    seed: u64,
    t_max: u32,
    threads: usize,
) -> Result<DiffusionProfile, SimError> {
    let cfg = WorldConfig::paper(kind, 16);
    let configs = paper_config_set(cfg.lattice, kind, k, n_random, seed)?;
    let genome = best_agent(kind);
    let profiles: Vec<Vec<usize>> = parallel_map(&configs, threads, |init| {
        let mut world = World::new(&cfg, genome.clone(), init)
            .expect("configuration sets match the environment");
        run_with_profile(&mut world, t_max).1
    });
    let horizon = profiles.iter().map(Vec::len).max().unwrap_or(1);
    let mut fraction = vec![0.0f64; horizon];
    for profile in &profiles {
        for (t, slot) in fraction.iter_mut().enumerate() {
            // Completed runs stay at their final (complete) count.
            let informed = *profile.get(t).unwrap_or_else(|| {
                profile.last().expect("profiles have at least one entry")
            });
            *slot += informed as f64 / k as f64;
        }
    }
    for slot in &mut fraction {
        *slot /= profiles.len() as f64;
    }
    Ok(DiffusionProfile { kind, agents: k, fraction, configs: profiles.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_monotone_and_t_dominates_s() {
        let t = diffusion_profile(GridKind::Triangulate, 16, 15, 3, 2000, 1).unwrap();
        let s = diffusion_profile(GridKind::Square, 16, 15, 3, 2000, 1).unwrap();
        for p in [&t, &s] {
            for w in p.fraction.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "{:?} not monotone", p.kind);
            }
            assert!((p.fraction.last().unwrap() - 1.0).abs() < 1e-9, "ends complete");
        }
        // The T curve reaches every threshold no later than S on average.
        for q in [0.5, 0.9, 1.0] {
            let tt = t.time_to_fraction(q).unwrap();
            let ts = s.time_to_fraction(q).unwrap();
            assert!(tt <= ts, "q={q}: T {tt} vs S {ts}");
        }
    }

    #[test]
    fn initial_fraction_reflects_placement_exchange() {
        let p = diffusion_profile(GridKind::Triangulate, 2, 10, 9, 2000, 1).unwrap();
        // With 2 sparse agents, very few placements are adjacent: the
        // initial informed fraction is far below 1.
        assert!(p.fraction[0] < 0.5, "{}", p.fraction[0]);
    }
}

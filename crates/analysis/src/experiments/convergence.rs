//! E20 — GA heuristic comparison: mutation-only (the paper's choice)
//! versus classical crossover+mutation, over several independent seeds.
//!
//! The paper: "We experimented with the classical crossover/mutation
//! method. Then we found that mutation only gave us similar good
//! results… It is subject to further research which heuristic is best to
//! evolve state machines." This runner performs that research at
//! configurable scale.

use crate::stats::Summary;
use a2a_fsm::FsmSpec;
use a2a_ga::{Evaluator, Evolution, GaConfig, ReproductionStrategy, WorkerPool};
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, SimError, WorldConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Aggregated convergence behaviour of one strategy over several seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyReport {
    /// Which strategy.
    pub strategy: ReproductionStrategy,
    /// Final best fitness per seed.
    pub final_fitness: Summary,
    /// Generation at which the best individual first became completely
    /// successful, per seed (runs that never did are excluded).
    pub success_generation: Option<Summary>,
    /// How many of the seeds reached complete success.
    pub runs_successful: usize,
    /// Seeds run.
    pub runs: usize,
    /// Mean best-fitness trajectory (generation-indexed, averaged over
    /// seeds).
    pub mean_trajectory: Vec<f64>,
}

/// Runs `runs` independent evolutions per strategy and aggregates their
/// convergence.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn compare_strategies(
    kind: GridKind,
    strategies: &[ReproductionStrategy],
    runs: usize,
    train_configs: usize,
    generations: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<StrategyReport>, SimError> {
    let env = WorldConfig::paper(kind, 16);
    // One persistent worker pool across every (strategy × run) cell;
    // fitness caches stay per-run because each run has its own training
    // set (a cache is only valid for the set it was filled against).
    let workers = Arc::new(WorkerPool::new(threads));
    let mut reports = Vec::with_capacity(strategies.len());
    for &strategy in strategies {
        let mut finals = Vec::with_capacity(runs);
        let mut success_gens = Vec::new();
        let mut trajectory = vec![0.0f64; generations + 1];
        for run in 0..runs {
            let run_seed = seed.wrapping_add(run as u64 * 0x9E37_79B9);
            let train = paper_config_set(env.lattice, kind, 8, train_configs, run_seed)?;
            let ga = Evolution::new(
                FsmSpec::paper(kind),
                Evaluator::new(env.clone(), train).with_pool(Arc::clone(&workers)),
                GaConfig::with_strategy(generations, run_seed, strategy),
            );
            let outcome = ga.run(|_| ());
            finals.push(outcome.best().report.fitness);
            if let Some(s) = outcome.history.iter().find(|s| s.best_complete) {
                success_gens.push(s.generation as f64);
            }
            for (slot, s) in trajectory.iter_mut().zip(&outcome.history) {
                *slot += s.best_fitness;
            }
        }
        for slot in &mut trajectory {
            *slot /= runs as f64;
        }
        reports.push(StrategyReport {
            strategy,
            final_fitness: Summary::of(&finals).expect("runs >= 1"),
            success_generation: Summary::of(&success_gens),
            runs_successful: success_gens.len(),
            runs,
            mean_trajectory: trajectory,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_aggregates_all_strategies() {
        let reports = compare_strategies(
            GridKind::Square,
            &[
                ReproductionStrategy::MutationOnly,
                ReproductionStrategy::UniformCrossover,
            ],
            2,
            8,
            10,
            5,
            1,
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.runs, 2);
            assert_eq!(r.mean_trajectory.len(), 11);
            // Elitist pools: the mean best-fitness trajectory is
            // non-increasing.
            for w in r.mean_trajectory.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "{:?}", r.strategy);
            }
            assert!(r.runs_successful <= r.runs);
        }
    }
}

//! E15 — the environments the paper's conclusion lists as future work:
//! bordered fields ("environments with border are easier") and obstacle
//! fields, exercised with the published best agents.

use crate::experiments::density::{run_series_in, DensityExperiment, GridSeries};
use a2a_fsm::best_agent;
use a2a_grid::{GridKind, Lattice, Pos};
use a2a_sim::{SimError, WorldConfig};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Torus vs. bordered field, same behaviour and densities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BorderComparison {
    /// Which grid family.
    pub kind: GridKind,
    /// Series on the paper's torus.
    pub torus: GridSeries,
    /// Series on the bordered field.
    pub bordered: GridSeries,
}

/// Runs the border extension for one grid kind.
///
/// Note the published agents were evolved *for the torus*; the comparison
/// shows whether they exploit borders as meeting lines as the paper's
/// earlier S-grid work suggests, or lose performance out of distribution.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn border_comparison(
    kind: GridKind,
    exp: &DensityExperiment,
) -> Result<BorderComparison, SimError> {
    let genome = best_agent(kind);
    let torus_cfg = WorldConfig::paper(kind, exp.m);
    let bordered_cfg = WorldConfig {
        lattice: Lattice::bordered(exp.m, exp.m),
        ..WorldConfig::paper(kind, exp.m)
    };
    Ok(BorderComparison {
        kind,
        torus: run_series_in(&torus_cfg, &genome, exp)?,
        bordered: run_series_in(&bordered_cfg, &genome, exp)?,
    })
}

/// Obstacle density sweep: `n_obstacles` random obstacle cells (seeded),
/// same densities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObstacleReport {
    /// Number of obstacle cells.
    pub obstacles: usize,
    /// Series in the obstacle field.
    pub series: GridSeries,
}

/// Runs the obstacle extension for one grid kind over several obstacle
/// counts.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn obstacle_sweep(
    kind: GridKind,
    obstacle_counts: &[usize],
    exp: &DensityExperiment,
    obstacle_seed: u64,
) -> Result<Vec<ObstacleReport>, SimError> {
    let genome = best_agent(kind);
    let mut reports = Vec::with_capacity(obstacle_counts.len());
    for &n_obs in obstacle_counts {
        let mut rng = SmallRng::seed_from_u64(obstacle_seed ^ n_obs as u64);
        let lattice = Lattice::torus(exp.m, exp.m);
        let mut cells: Vec<usize> = (0..lattice.len()).collect();
        for i in 0..n_obs.min(cells.len()) {
            let j = rng.random_range(i..cells.len());
            cells.swap(i, j);
        }
        let obstacles: Vec<Pos> = cells[..n_obs.min(cells.len())]
            .iter()
            .map(|&c| lattice.pos_at(c))
            .collect();
        // Keep agents off the obstacle cells: the shared config-set
        // generator does not know about them, so build sets that do.
        let cfg = WorldConfig { obstacles: obstacles.clone(), ..WorldConfig::paper(kind, exp.m) };
        let series = run_obstacle_series(&cfg, &genome, exp, &obstacles)?;
        reports.push(ObstacleReport { obstacles: n_obs, series });
    }
    Ok(reports)
}

fn run_obstacle_series(
    cfg: &WorldConfig,
    genome: &a2a_fsm::Genome,
    exp: &DensityExperiment,
    obstacles: &[Pos],
) -> Result<GridSeries, SimError> {
    use crate::stats::Summary;
    use a2a_ga::parallel_map;
    use a2a_sim::{simulate, InitialConfig};

    let mut points = Vec::new();
    for &k in &exp.agent_counts {
        let mut rng = SmallRng::seed_from_u64(exp.seed ^ (k as u64) << 1);
        let configs: Result<Vec<InitialConfig>, SimError> = (0..exp.n_random)
            .map(|_| InitialConfig::random(cfg.lattice, cfg.kind, k, obstacles, &mut rng))
            .collect();
        let configs = configs?;
        let outcomes = parallel_map(&configs, exp.threads, |init| {
            simulate(cfg, genome.clone(), init, exp.t_max).expect("valid construction")
        });
        let times: Vec<u32> = outcomes.iter().filter_map(|o| o.t_comm).collect();
        points.push(crate::experiments::density::DensityPoint {
            agents: k,
            times: Summary::of_u32(&times).unwrap_or(Summary {
                n: 0,
                mean: f64::NAN,
                std_dev: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                median: f64::NAN,
            }),
            successes: times.len(),
            total: outcomes.len(),
        });
    }
    Ok(GridSeries { kind: cfg.kind, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DensityExperiment {
        DensityExperiment {
            m: 16,
            agent_counts: vec![8],
            n_random: 8,
            seed: 23,
            t_max: 4000,
            threads: 2,
        }
    }

    #[test]
    fn border_comparison_runs_both_environments() {
        let cmp = border_comparison(GridKind::Square, &tiny()).unwrap();
        assert!(cmp.torus.points[0].is_complete());
        // Bordered environments may or may not be solved by
        // torus-evolved agents; just require the runs happened
        // (8 random + 3 manual configurations).
        assert_eq!(cmp.bordered.points[0].total, 11);
    }

    #[test]
    fn obstacle_sweep_reports_each_count() {
        let reports = obstacle_sweep(GridKind::Triangulate, &[0, 8], &tiny(), 99).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].obstacles, 0);
        // The zero-obstacle case must be solvable.
        assert!(reports[0].series.points[0].successes > 0);
    }
}

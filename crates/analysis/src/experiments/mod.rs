//! One module per experiment of DESIGN.md's per-experiment index
//! (E2–E15): each regenerates a table or figure of the paper, or an
//! ablation/extension of its design choices.

pub mod ablation;
pub mod baselines;
pub mod border_evolution;
pub mod convergence;
pub mod density;
pub mod distances;
pub mod exhaustive;
pub mod extensions;
pub mod future_work;
pub mod grid33;
pub mod mobility;
pub mod profile;
pub mod scaling;
pub mod time_shuffle;
pub mod traces;
pub mod worstcase;

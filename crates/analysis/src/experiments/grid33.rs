//! E9 — the 33×33 scaling comparison of Sect. 5: the best 16×16-evolved
//! agents tested on 1003 random 33×33 fields with 16 agents
//! (paper: S-agent 229 steps, T-agent 181 steps, both reliable).

use crate::experiments::density::{run_series, DensityExperiment, GridSeries};
use a2a_fsm::best_agent;
use a2a_grid::GridKind;
use a2a_sim::SimError;
use serde::{Deserialize, Serialize};

/// Paper values for the 33×33 / 16-agent comparison.
pub const PAPER_GRID33_S: f64 = 229.0;
/// Paper value for the T-agent on 33×33.
pub const PAPER_GRID33_T: f64 = 181.0;

/// Result of the 33×33 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid33Result {
    /// T-grid series (single point, `k = 16`).
    pub t_grid: GridSeries,
    /// S-grid series (single point, `k = 16`).
    pub s_grid: GridSeries,
}

impl Grid33Result {
    /// Mean T-agent time.
    #[must_use]
    pub fn t_mean(&self) -> f64 {
        self.t_grid.points[0].times.mean
    }

    /// Mean S-agent time.
    #[must_use]
    pub fn s_mean(&self) -> f64 {
        self.s_grid.points[0].times.mean
    }

    /// Whether both agents solved every configuration (the paper reports
    /// "the agents were reliable").
    #[must_use]
    pub fn both_reliable(&self) -> bool {
        self.t_grid.points[0].is_complete() && self.s_grid.points[0].is_complete()
    }
}

/// Runs the 33×33 comparison with `n_random` random configurations
/// (paper: 1003).
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn run_grid33(n_random: usize, seed: u64, threads: usize) -> Result<Grid33Result, SimError> {
    let exp = DensityExperiment {
        m: 33,
        agent_counts: vec![16],
        n_random,
        seed,
        t_max: 20_000,
        threads,
    };
    Ok(Grid33Result {
        t_grid: run_series(GridKind::Triangulate, &best_agent(GridKind::Triangulate), &exp)?,
        s_grid: run_series(GridKind::Square, &best_agent(GridKind::Square), &exp)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid33_run_preserves_ordering() {
        let r = run_grid33(8, 17, 2).unwrap();
        assert!(r.both_reliable(), "{r:?}");
        assert!(
            r.t_mean() < r.s_mean(),
            "T must stay faster when scaled up: T={} S={}",
            r.t_mean(),
            r.s_mean()
        );
        // Times grow well beyond the 16×16 values (paper: 181 / 229).
        assert!(r.t_mean() > 60.0);
    }
}

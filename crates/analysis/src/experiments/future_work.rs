//! E18 — the conclusion's remaining future work: agents with **more
//! control states** and **more colours**. The FSM machinery is fully
//! parametric, so this experiment evolves richer specs under the same
//! budget and compares them to the paper's 4-state/2-colour agents.

use a2a_fsm::{FsmSpec, TurnSet};
use a2a_ga::{Evaluator, Evolution, FitnessReport, GaConfig};
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, SimError, WorldConfig};
use serde::{Deserialize, Serialize};

/// One spec's result under the shared budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecResult {
    /// Human-readable label.
    pub label: String,
    /// States / colours of the spec.
    pub n_states: u8,
    /// Colour count.
    pub n_colors: u8,
    /// log₁₀ of the search-space size (the cost of richness).
    pub search_space_log10: f64,
    /// Held-out evaluation of the evolved winner.
    pub held_out: FitnessReport,
}

/// Evolves one FSM per spec (same generations, same configuration sets)
/// and evaluates each winner on a fresh set.
///
/// The paper's hypothesis cuts both ways: more states/colours increase
/// expressive power but blow up the search space (`K = (|s||y|)^(|s||x|)`),
/// so under a *fixed budget* richer specs may do worse.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn spec_sweep(
    kind: GridKind,
    specs: &[(String, FsmSpec)],
    train_configs: usize,
    generations: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<SpecResult>, SimError> {
    let env = WorldConfig::paper(kind, 16);
    let train = paper_config_set(env.lattice, kind, 8, train_configs, seed)?;
    let held_out = paper_config_set(env.lattice, kind, 8, train_configs.max(30), seed ^ 0xF00D)?;
    let mut results = Vec::with_capacity(specs.len());
    for (label, spec) in specs {
        assert_eq!(spec.kind(), kind, "spec must match the grid");
        let ga = Evolution::new(
            *spec,
            Evaluator::new(env.clone(), train.clone()).with_threads(threads),
            GaConfig::paper(generations, seed),
        );
        let outcome = ga.run(|_| ());
        let held = Evaluator::new(env.clone(), held_out.clone())
            .with_t_max(1000)
            .with_threads(threads)
            .evaluate(&outcome.best().genome);
        results.push(SpecResult {
            label: label.clone(),
            n_states: spec.n_states,
            n_colors: spec.n_colors,
            search_space_log10: spec.search_space_log10(),
            held_out: held,
        });
    }
    Ok(results)
}

/// The default spec ladder for a grid kind: the paper's 4/2 plus the
/// future-work 6-state and 3-colour variants.
#[must_use]
pub fn default_specs(kind: GridKind) -> Vec<(String, FsmSpec)> {
    let ts = TurnSet::for_kind(kind);
    vec![
        ("4 states, 2 colors (paper)".to_string(), FsmSpec::paper(kind)),
        ("6 states, 2 colors".to_string(), FsmSpec::new(6, 2, ts)),
        ("4 states, 3 colors".to_string(), FsmSpec::new(4, 3, ts)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_has_growing_search_spaces() {
        let specs = default_specs(GridKind::Triangulate);
        assert_eq!(specs.len(), 3);
        let paper = specs[0].1.search_space_log10();
        for (label, spec) in &specs[1..] {
            assert!(spec.search_space_log10() > paper, "{label}");
        }
    }

    #[test]
    fn tiny_sweep_produces_one_result_per_spec() {
        let specs = default_specs(GridKind::Square);
        let results = spec_sweep(GridKind::Square, &specs, 6, 4, 1, 1).unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.held_out.total >= 30);
            assert!(r.held_out.fitness.is_finite());
        }
        assert_eq!(results[1].n_states, 6);
        assert_eq!(results[2].n_colors, 3);
    }
}

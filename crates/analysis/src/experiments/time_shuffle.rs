//! E17 — time-shuffling extension: the authors' earlier work (ref. \[8\] in the
//! paper) found that alternating two FSMs in time speeds up the task.
//! This experiment evolves a pool once, then compares the best single
//! FSM against time-shuffled pairs built from the pool's top individuals.

use a2a_fsm::FsmSpec;
use a2a_ga::{Evaluator, Evolution, FitnessReport, GaConfig};
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, Behaviour, SimError, WorldConfig};
use serde::{Deserialize, Serialize};

/// Outcome of the time-shuffle comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleComparison {
    /// Best single FSM on the held-out set.
    pub single: FitnessReport,
    /// Best time-shuffled pair on the held-out set.
    pub shuffled: FitnessReport,
    /// Which pool pair (indices) won.
    pub pair: (usize, usize),
}

impl ShuffleComparison {
    /// Whether shuffling improved on the single FSM (the prior-work
    /// claim).
    #[must_use]
    pub fn shuffle_wins(&self) -> bool {
        self.shuffled.fitness < self.single.fitness
    }
}

/// Evolves a pool (k = 8, 16×16), then evaluates the best single FSM and
/// every pair among the pool's top `top_n` individuals as a time-shuffled
/// behaviour on a fresh configuration set; returns the best of each.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
///
/// # Panics
///
/// Panics if `top_n < 2`.
pub fn shuffle_comparison(
    kind: GridKind,
    train_configs: usize,
    generations: usize,
    top_n: usize,
    seed: u64,
    threads: usize,
) -> Result<ShuffleComparison, SimError> {
    assert!(top_n >= 2, "pairs need at least two candidates");
    let env = WorldConfig::paper(kind, 16);
    let train = paper_config_set(env.lattice, kind, 8, train_configs, seed)?;
    let ga = Evolution::new(
        FsmSpec::paper(kind),
        Evaluator::new(env.clone(), train).with_threads(threads),
        GaConfig::paper(generations, seed),
    );
    let outcome = ga.run(|_| ());
    let top: Vec<_> = outcome.pool.iter().take(top_n).collect();

    let held_out = paper_config_set(env.lattice, kind, 8, train_configs.max(30), seed ^ 0x5AFE)?;
    let eval = Evaluator::new(env, held_out).with_t_max(1000).with_threads(threads);

    let single = eval.evaluate(&top[0].genome);
    let mut best_pair = (0usize, 1usize);
    let mut best_report: Option<FitnessReport> = None;
    for i in 0..top.len() {
        for j in 0..top.len() {
            if i == j {
                continue;
            }
            let behaviour =
                Behaviour::shuffled_pair(top[i].genome.clone(), top[j].genome.clone());
            let report = eval.evaluate_behaviour(&behaviour);
            if best_report.is_none_or(|b| report.fitness < b.fitness) {
                best_report = Some(report);
                best_pair = (i, j);
            }
        }
    }
    Ok(ShuffleComparison {
        single,
        shuffled: best_report.expect("at least one pair evaluated"),
        pair: best_pair,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_and_reports_both_sides() {
        let cmp = shuffle_comparison(GridKind::Triangulate, 12, 15, 3, 21, 1).unwrap();
        assert!(cmp.single.total >= 30);
        assert_eq!(cmp.single.total, cmp.shuffled.total);
        assert_ne!(cmp.pair.0, cmp.pair.1);
        // No claim about who wins at this tiny scale — just that the
        // shuffled search space includes the A/A diagonal's neighbours,
        // so the best pair can never be catastrophically worse than the
        // twice-evaluated singles unless evolution found nothing.
        assert!(cmp.shuffled.fitness.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn top_n_validation() {
        let _ = shuffle_comparison(GridKind::Square, 4, 1, 1, 0, 1);
    }
}

//! E25 — evolving agents *for* bordered fields.
//!
//! The paper's earlier work found "environments with border are easier
//! (faster) to solve" — for agents evolved in those environments. E15
//! only tested the torus-evolved agents out of distribution; this
//! experiment completes the claim by evolving border-native agents under
//! the same budget and comparing each specialist in its home
//! environment.

use a2a_fsm::FsmSpec;
use a2a_ga::{Evaluator, Evolution, FitnessReport, GaConfig};
use a2a_grid::{GridKind, Lattice};
use a2a_sim::{paper_config_set, SimError, WorldConfig};
use serde::{Deserialize, Serialize};

/// Home-environment comparison of torus- and border-evolved agents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BorderEvolution {
    /// Grid family.
    pub kind: GridKind,
    /// Torus specialist evaluated on fresh torus fields.
    pub torus_home: FitnessReport,
    /// Border specialist evaluated on fresh bordered fields.
    pub border_home: FitnessReport,
    /// Torus specialist on bordered fields (the E15 cross-over).
    pub torus_on_border: FitnessReport,
    /// Border specialist on torus fields (the reverse cross-over).
    pub border_on_torus: FitnessReport,
}

impl BorderEvolution {
    /// The earlier-paper claim: the bordered environment is easier *for
    /// its own specialist* than the torus is for its specialist.
    #[must_use]
    pub fn border_is_easier(&self) -> bool {
        self.border_home.fitness < self.torus_home.fitness
    }
}

/// Evolves one specialist per environment and cross-evaluates both.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn border_evolution(
    kind: GridKind,
    k: usize,
    train_configs: usize,
    generations: usize,
    seed: u64,
    threads: usize,
) -> Result<BorderEvolution, SimError> {
    let torus_env = WorldConfig::paper(kind, 16);
    let border_env = WorldConfig {
        lattice: Lattice::bordered(16, 16),
        ..WorldConfig::paper(kind, 16)
    };
    let mut specialists = Vec::with_capacity(2);
    for env in [&torus_env, &border_env] {
        let train = paper_config_set(env.lattice, kind, k, train_configs, seed)?;
        let ga = Evolution::new(
            FsmSpec::paper(kind),
            Evaluator::new(env.clone(), train).with_threads(threads),
            GaConfig::paper(generations, seed),
        );
        specialists.push(ga.run(|_| ()).best().genome.clone());
    }
    let fresh_eval = |env: &WorldConfig| -> Result<Evaluator, SimError> {
        let fresh = paper_config_set(env.lattice, kind, k, train_configs.max(40), seed ^ 0xD008_u64)?;
        Ok(Evaluator::new(env.clone(), fresh).with_t_max(2000).with_threads(threads))
    };
    let torus_eval = fresh_eval(&torus_env)?;
    let border_eval = fresh_eval(&border_env)?;
    Ok(BorderEvolution {
        kind,
        torus_home: torus_eval.evaluate(&specialists[0]),
        border_home: border_eval.evaluate(&specialists[1]),
        torus_on_border: border_eval.evaluate(&specialists[0]),
        border_on_torus: torus_eval.evaluate(&specialists[1]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_evaluation_runs_and_specialists_work_at_home() {
        let r = border_evolution(GridKind::Triangulate, 4, 10, 25, 3, 2).unwrap();
        // Each specialist solves a majority of its home environment.
        assert!(
            r.torus_home.successes * 2 > r.torus_home.total,
            "torus specialist at home: {:?}",
            r.torus_home
        );
        assert!(
            r.border_home.successes * 2 > r.border_home.total,
            "border specialist at home: {:?}",
            r.border_home
        );
    }
}

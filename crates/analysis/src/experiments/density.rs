//! E6 — Table 1 / Fig. 5: communication time vs. agent density in the
//! T- and S-grids, plus arbitrary density sweeps (the same machinery runs
//! the 33×33 comparison, E9, via a different extent/agent count).

use crate::stats::Summary;
use crate::table::{f2, f3, TextTable};
use a2a_fsm::{best_agent, Genome};
use a2a_ga::WorkerPool;
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, BatchRunner, Dispatch, SimError, WorldConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The agent counts of Table 1.
pub const TABLE1_AGENT_COUNTS: [usize; 6] = [2, 4, 8, 16, 32, 256];

/// Paper Table 1, T-grid row (16×16, 1003 configurations).
pub const PAPER_TABLE1_T: [f64; 6] = [58.43, 78.30, 58.68, 41.25, 28.06, 9.00];

/// Paper Table 1, S-grid row.
pub const PAPER_TABLE1_S: [f64; 6] = [82.78, 116.12, 90.93, 63.39, 42.93, 15.00];

/// Parameters of a density experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DensityExperiment {
    /// Field extent (`m × m`).
    pub m: u16,
    /// Agent counts to sweep.
    pub agent_counts: Vec<usize>,
    /// Random configurations per count (paper: 1000, plus the manual 3).
    pub n_random: usize,
    /// Seed of the configuration stream.
    pub seed: u64,
    /// Verification horizon (generous, unlike evolution's 200).
    pub t_max: u32,
    /// Worker threads.
    pub threads: usize,
}

impl DensityExperiment {
    /// The full Table 1 protocol: 16×16, `k ∈ {2,4,8,16,32,256}`,
    /// 1000 random + manual configurations each.
    #[must_use]
    pub fn table1(seed: u64, threads: usize) -> Self {
        Self {
            m: 16,
            agent_counts: TABLE1_AGENT_COUNTS.to_vec(),
            n_random: 1000,
            seed,
            t_max: 5000,
            threads,
        }
    }

    /// A reduced protocol for quick runs and benches.
    #[must_use]
    pub fn quick(n_random: usize, seed: u64, threads: usize) -> Self {
        Self { n_random, ..Self::table1(seed, threads) }
    }
}

/// Results for one grid at one agent count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityPoint {
    /// Agent count `k`.
    pub agents: usize,
    /// Summary of `t_comm` over the *successful* configurations.
    pub times: Summary,
    /// Solved configurations.
    pub successes: usize,
    /// Total configurations.
    pub total: usize,
}

impl DensityPoint {
    /// Whether every configuration was solved ("completely successful").
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.successes == self.total
    }
}

/// One grid's series over all densities (a Fig. 5 curve).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSeries {
    /// Which grid.
    pub kind: GridKind,
    /// One point per agent count.
    pub points: Vec<DensityPoint>,
}

/// The full two-grid comparison (Table 1 / Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityComparison {
    /// Parameters that produced this result.
    pub experiment: DensityExperiment,
    /// T-grid series.
    pub t_grid: GridSeries,
    /// S-grid series.
    pub s_grid: GridSeries,
}

impl DensityComparison {
    /// The `T/S` mean-time ratios per agent count (Table 1's third row).
    #[must_use]
    pub fn ratios(&self) -> Vec<f64> {
        self.t_grid
            .points
            .iter()
            .zip(&self.s_grid.points)
            .map(|(t, s)| t.times.mean / s.times.mean)
            .collect()
    }

    /// Renders the paper's Table 1 layout (with our measured values).
    #[must_use]
    pub fn to_table(&self) -> TextTable {
        let mut header = vec!["N_agents".to_string()];
        header.extend(self.experiment.agent_counts.iter().map(ToString::to_string));
        let mut table = TextTable::new(header);
        let row = |label: &str, values: Vec<String>| {
            let mut cells = vec![label.to_string()];
            cells.extend(values);
            cells
        };
        table.add_row(row(
            "T-grid",
            self.t_grid.points.iter().map(|p| f2(p.times.mean)).collect(),
        ));
        table.add_row(row(
            "S-grid",
            self.s_grid.points.iter().map(|p| f2(p.times.mean)).collect(),
        ));
        table.add_row(row("T/S", self.ratios().iter().map(|&r| f3(r)).collect()));
        table
    }

    /// CSV of the Fig. 5 series (`k, t_mean, s_mean, ratio`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("agents,t_grid_mean,s_grid_mean,ratio\n");
        for ((t, s), r) in self
            .t_grid
            .points
            .iter()
            .zip(&self.s_grid.points)
            .zip(self.ratios())
        {
            out.push_str(&format!("{},{:.4},{:.4},{:.4}\n", t.agents, t.times.mean, s.times.mean, r));
        }
        out
    }
}

/// Runs one grid's series with an explicit behaviour.
///
/// # Errors
///
/// Propagates configuration-set construction failures (e.g. more agents
/// than cells).
pub fn run_series(
    kind: GridKind,
    genome: &Genome,
    exp: &DensityExperiment,
) -> Result<GridSeries, SimError> {
    let cfg = WorldConfig::paper(kind, exp.m);
    run_series_in(&cfg, genome, exp)
}

/// Runs one grid's series in a custom environment (bordered fields,
/// obstacles, alternative policies — used by the ablations E12–E15).
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn run_series_in(
    cfg: &WorldConfig,
    genome: &Genome,
    exp: &DensityExperiment,
) -> Result<GridSeries, SimError> {
    // One compiled kernel environment serves every density and thread;
    // the worker pool rides inside `run_all` through the dispatch seam,
    // so every density level runs the lockstep multi-run engine across
    // all cores with outcomes bit-identical to the serial path.
    let pool: Arc<dyn Dispatch> = Arc::new(WorkerPool::new(exp.threads));
    let runner =
        BatchRunner::from_genome(cfg, genome.clone(), exp.t_max)?.with_dispatch(pool);
    let mut points = Vec::with_capacity(exp.agent_counts.len());
    for &k in &exp.agent_counts {
        let configs = paper_config_set(cfg.lattice, cfg.kind, k, exp.n_random, exp.seed)?;
        let outcomes = runner
            .run_all(&configs)
            .expect("configuration sets are generated to match the environment");
        let times: Vec<u32> = outcomes.iter().filter_map(|o| o.t_comm).collect();
        points.push(DensityPoint {
            agents: k,
            times: Summary::of_u32(&times).unwrap_or(Summary {
                n: 0,
                mean: f64::NAN,
                std_dev: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                median: f64::NAN,
            }),
            successes: times.len(),
            total: outcomes.len(),
        });
    }
    Ok(GridSeries { kind: cfg.kind, points })
}

/// Runs the full two-grid comparison with the paper's published best
/// agents (E6: Table 1 and Fig. 5).
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn run_density_comparison(exp: &DensityExperiment) -> Result<DensityComparison, SimError> {
    let t_grid = run_series(GridKind::Triangulate, &best_agent(GridKind::Triangulate), exp)?;
    let s_grid = run_series(GridKind::Square, &best_agent(GridKind::Square), exp)?;
    Ok(DensityComparison { experiment: exp.clone(), t_grid, s_grid })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DensityExperiment {
        DensityExperiment {
            m: 16,
            agent_counts: vec![2, 16, 256],
            n_random: 12,
            seed: 2013,
            t_max: 3000,
            threads: 2,
        }
    }

    #[test]
    fn quick_comparison_matches_paper_shape() {
        let cmp = run_density_comparison(&quick()).unwrap();
        // Complete success everywhere.
        for p in cmp.t_grid.points.iter().chain(&cmp.s_grid.points) {
            assert!(p.is_complete(), "{p:?}");
        }
        // T beats S at every density.
        for (t, s) in cmp.t_grid.points.iter().zip(&cmp.s_grid.points) {
            assert!(t.times.mean < s.times.mean, "T {t:?} vs S {s:?}");
        }
        // The fully packed case is exactly D − 1.
        assert_eq!(cmp.t_grid.points[2].times.mean, 9.0);
        assert_eq!(cmp.s_grid.points[2].times.mean, 15.0);
        // Ratios live in the paper's band.
        for r in cmp.ratios() {
            assert!((0.5..0.85).contains(&r), "ratio {r}");
        }
    }

    #[test]
    fn table_and_csv_render() {
        let cmp = run_density_comparison(&DensityExperiment {
            agent_counts: vec![256],
            n_random: 2,
            ..quick()
        })
        .unwrap();
        let table = cmp.to_table().to_string();
        assert!(table.contains("T-grid") && table.contains("T/S"), "{table}");
        let csv = cmp.to_csv();
        assert!(csv.starts_with("agents,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("256,9.0000,15.0000,0.6000"), "{csv}");
    }

    #[test]
    fn quick_protocol_shares_table1_structure() {
        let exp = DensityExperiment::quick(5, 1, 1);
        assert_eq!(exp.agent_counts, TABLE1_AGENT_COUNTS.to_vec());
        assert_eq!(exp.m, 16);
        assert_eq!(exp.n_random, 5);
    }
}

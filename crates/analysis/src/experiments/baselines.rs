//! E16 — baseline comparison: the published evolved agents against
//! hand-coded reference behaviours and against the diffusion lower
//! bound. Quantifies the paper's premise that good agent behaviour is
//! hard to hand-design (and how close evolution gets to optimal).

use crate::bounds::diffusion_lower_bound;
use crate::experiments::ablation::Variant;
use crate::experiments::density::{run_series_in, DensityExperiment};
use crate::stats::Summary;
use a2a_fsm::{all_baselines, best_agent};
use a2a_ga::parallel_map;
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, simulate, SimError, WorldConfig};
use serde::{Deserialize, Serialize};

/// Runs the published best agent plus every hand-coded baseline over the
/// experiment's densities.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn baseline_comparison(
    kind: GridKind,
    exp: &DensityExperiment,
) -> Result<Vec<Variant>, SimError> {
    let cfg = WorldConfig::paper(kind, exp.m);
    let mut variants = vec![Variant {
        label: format!("{} evolved (paper)", kind.label()),
        series: run_series_in(&cfg, &best_agent(kind), exp)?,
    }];
    for (label, genome) in all_baselines(kind) {
        variants.push(Variant {
            label: format!("{} {label}", kind.label()),
            series: run_series_in(&cfg, &genome, exp)?,
        });
    }
    Ok(variants)
}

/// Measured-vs-bound report for one grid and agent count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundReport {
    /// Grid family.
    pub kind: GridKind,
    /// Agent count.
    pub agents: usize,
    /// Summary of the per-configuration diffusion lower bounds.
    pub bound: Summary,
    /// Summary of the measured times (successful configurations).
    pub measured: Summary,
    /// Mean of the per-configuration `measured / max(bound, 1)` ratios
    /// (how far from the movement-optimal diffusion the agents are).
    pub mean_slowdown: f64,
    /// Solved / total configurations.
    pub successes: usize,
    /// Total configurations.
    pub total: usize,
}

/// Compares the published best agent against the per-configuration
/// diffusion lower bound at one density.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn bound_comparison(
    kind: GridKind,
    k: usize,
    n_random: usize,
    seed: u64,
    t_max: u32,
    threads: usize,
) -> Result<BoundReport, SimError> {
    let cfg = WorldConfig::paper(kind, 16);
    let configs = paper_config_set(cfg.lattice, kind, k, n_random, seed)?;
    let genome = best_agent(kind);
    let rows = parallel_map(&configs, threads, |init| {
        let bound = diffusion_lower_bound(cfg.lattice, kind, init);
        let outcome = simulate(&cfg, genome.clone(), init, t_max)
            .expect("configuration sets match the environment");
        (bound, outcome.t_comm)
    });
    let bounds: Vec<u32> = rows.iter().map(|&(b, _)| b).collect();
    let times: Vec<u32> = rows.iter().filter_map(|&(_, t)| t).collect();
    let slowdowns: Vec<f64> = rows
        .iter()
        .filter_map(|&(b, t)| t.map(|t| f64::from(t) / f64::from(b.max(1))))
        .collect();
    Ok(BoundReport {
        kind,
        agents: k,
        bound: Summary::of_u32(&bounds).expect("non-empty configuration set"),
        measured: Summary::of_u32(&times).unwrap_or(Summary {
            n: 0,
            mean: f64::NAN,
            std_dev: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            median: f64::NAN,
        }),
        mean_slowdown: slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64,
        successes: times.len(),
        total: rows.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DensityExperiment {
        DensityExperiment {
            m: 16,
            agent_counts: vec![8],
            n_random: 10,
            seed: 13,
            t_max: 1500,
            threads: 1,
        }
    }

    #[test]
    fn evolved_beats_every_baseline() {
        let variants = baseline_comparison(GridKind::Triangulate, &tiny()).unwrap();
        assert_eq!(variants.len(), 5);
        let evolved = &variants[0].series.points[0];
        assert!(evolved.is_complete());
        for v in &variants[1..] {
            let p = &v.series.points[0];
            let worse = p.successes < p.total
                || (p.successes > 0 && p.times.mean > evolved.times.mean);
            assert!(worse, "{} unexpectedly matches the evolved agent: {p:?}", v.label);
        }
    }

    #[test]
    fn ballistic_agents_fail_somewhere() {
        // Parallel orbits never meet: the canonical unreliable behaviour.
        let variants = baseline_comparison(GridKind::Square, &tiny()).unwrap();
        let ballistic = variants
            .iter()
            .find(|v| v.label.contains("ballistic"))
            .expect("baseline present");
        let p = &ballistic.series.points[0];
        assert!(p.successes < p.total, "{p:?}");
    }

    #[test]
    fn bound_report_is_consistent() {
        let r = bound_comparison(GridKind::Triangulate, 8, 12, 3, 1500, 1).unwrap();
        assert_eq!(r.total, 12 + 3); // manual configs fit at k = 8
        assert_eq!(r.successes, r.total, "published T-agent is reliable");
        assert!(r.mean_slowdown >= 1.0, "can't beat a lower bound");
        assert!(r.measured.mean > r.bound.mean);
    }
}

//! E21 — mobility analysis: the fraction of steps agents actually move,
//! per density. Explains the Table 1 maximum at `k = 4`: two agents are
//! fully mobile but rarely meet; many agents meet instantly but block
//! each other; four agents combine long searches with little help from
//! crowding — the worst of both regimes.

use crate::stats::Summary;
use a2a_fsm::best_agent;
use a2a_ga::parallel_map;
use a2a_grid::GridKind;
use a2a_sim::{paper_config_set, record_trajectory, SimError, World, WorldConfig};
use serde::{Deserialize, Serialize};

/// Mobility statistics of one grid kind at one density.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityPoint {
    /// Grid family.
    pub kind: GridKind,
    /// Agent count.
    pub agents: usize,
    /// Summary of per-run mobility (fraction of steps spent moving).
    pub mobility: Summary,
    /// Summary of per-run communication times (successful runs).
    pub times: Summary,
}

/// Measures mobility for the published best agent of `kind` across
/// densities.
///
/// # Errors
///
/// Propagates configuration-set construction failures.
pub fn mobility_sweep(
    kind: GridKind,
    agent_counts: &[usize],
    n_random: usize,
    seed: u64,
    t_max: u32,
    threads: usize,
) -> Result<Vec<MobilityPoint>, SimError> {
    let cfg = WorldConfig::paper(kind, 16);
    let genome = best_agent(kind);
    let mut points = Vec::with_capacity(agent_counts.len());
    for &k in agent_counts {
        let configs = paper_config_set(cfg.lattice, kind, k, n_random, seed)?;
        let rows = parallel_map(&configs, threads, |init| {
            let mut world = World::new(&cfg, genome.clone(), init)
                .expect("configuration sets match the environment");
            let (outcome, traj) = record_trajectory(&mut world, t_max);
            (traj.mobility(), outcome.t_comm)
        });
        let mobilities: Vec<f64> = rows.iter().map(|&(m, _)| m).collect();
        let times: Vec<u32> = rows.iter().filter_map(|&(_, t)| t).collect();
        points.push(MobilityPoint {
            kind,
            agents: k,
            mobility: Summary::of(&mobilities).expect("non-empty set"),
            times: Summary::of_u32(&times).unwrap_or(Summary {
                n: 0,
                mean: f64::NAN,
                std_dev: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                median: f64::NAN,
            }),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobility_decreases_with_density() {
        let points =
            mobility_sweep(GridKind::Triangulate, &[2, 32, 256], 8, 3, 2000, 1).unwrap();
        assert_eq!(points.len(), 3);
        assert!(
            points[0].mobility.mean > points[1].mobility.mean,
            "sparse agents move more: {points:?}"
        );
        assert_eq!(points[2].mobility.mean, 0.0, "fully packed cannot move");
    }
}

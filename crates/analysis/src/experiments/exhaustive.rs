//! E22 — exhaustive two-agent verification.
//!
//! The paper: "we could not prove that these state machines will be
//! successful for any arbitrary initial configuration." For `k = 2` we
//! *can*: the CA dynamics is equivariant under torus translations, so
//! fixing agent 0 at the origin loses no generality, and the remaining
//! configuration space — 255 relative positions × every direction pair —
//! is small enough to enumerate completely. A clean sweep is a proof of
//! 2-agent reliability (up to the translation argument); the histogram
//! is the exact 2-agent time distribution.

use crate::histogram::Histogram;
use a2a_fsm::best_agent;
use a2a_ga::parallel_map;
use a2a_grid::{Dir, GridKind, Lattice, Pos};
use a2a_sim::{decide, Decision, InitialConfig, World, WorldConfig};
use serde::{Deserialize, Serialize};

/// Outcome of the exhaustive sweep for one grid kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExhaustiveResult {
    /// Grid family.
    pub kind: GridKind,
    /// Configurations enumerated (modulo translation).
    pub total: usize,
    /// Configurations solved (with proof).
    pub solved: usize,
    /// Configurations proven to never solve (limit cycles).
    pub never_solves: usize,
    /// Exact time distribution over the solved configurations.
    pub histogram: Histogram,
    /// A worst-case configuration (agent-1 position and the two
    /// directions), if any run was slowest.
    pub worst: Option<(Pos, Dir, Dir, u32)>,
}

impl ExhaustiveResult {
    /// Whether the sweep proves 2-agent reliability (every configuration
    /// decided *solved*; failures would be decided, not timed out).
    #[must_use]
    pub fn is_proof(&self) -> bool {
        self.solved == self.total && self.never_solves == 0
    }
}

/// Enumerates every 2-agent configuration of the `m × m` torus modulo
/// translation (agent 0 fixed at the origin) and *decides* each with the
/// cycle-detecting procedure.
///
/// `max_states` bounds the per-configuration state store (memory safety
/// valve; decided cases are unaffected by its value).
#[must_use]
pub fn exhaustive_two_agents(
    kind: GridKind,
    m: u16,
    max_states: usize,
    threads: usize,
) -> ExhaustiveResult {
    let cfg = WorldConfig::paper(kind, m);
    let lattice = Lattice::torus(m, m);
    let genome = best_agent(kind);
    let dirs = kind.dir_count();

    let mut cases = Vec::new();
    for cell in 1..lattice.len() {
        let pos1 = lattice.pos_at(cell);
        for d0 in 0..dirs {
            for d1 in 0..dirs {
                cases.push((pos1, Dir::new(d0), Dir::new(d1)));
            }
        }
    }

    let outcomes = parallel_map(&cases, threads, |&(pos1, d0, d1)| {
        let init = InitialConfig::new(vec![(Pos::new(0, 0), d0), (pos1, d1)]);
        let mut world = World::new(&cfg, genome.clone(), &init)
            .expect("enumerated configurations are valid");
        decide(&mut world, max_states)
    });

    let mut histogram = Histogram::new();
    let mut worst: Option<(Pos, Dir, Dir, u32)> = None;
    let mut solved = 0usize;
    let mut never_solves = 0usize;
    for (&(pos1, d0, d1), &decision) in cases.iter().zip(&outcomes) {
        match decision {
            Decision::Solved(t) => {
                solved += 1;
                histogram.record(t);
                if worst.is_none_or(|(_, _, _, wt)| t > wt) {
                    worst = Some((pos1, d0, d1, t));
                }
            }
            Decision::NeverSolves { .. } => never_solves += 1,
            Decision::Undecided => {}
        }
    }
    ExhaustiveResult { kind, total: cases.len(), solved, never_solves, histogram, worst }
}

/// Enumerates every **3-agent** configuration of the `m × m` torus modulo
/// translation (agent 0 at the origin; agents are distinguishable, so all
/// ordered pairs of distinct cells for agents 1 and 2) and decides each.
///
/// The case count is `(N−1)·(N−2)·dirs³` — use small `m` (the 8×8 S-grid
/// is ~250 k decisions, the 8×8 T-grid ~844 k).
#[must_use]
pub fn exhaustive_three_agents(
    kind: GridKind,
    m: u16,
    max_states: usize,
    threads: usize,
) -> ExhaustiveResult {
    let cfg = WorldConfig::paper(kind, m);
    let lattice = Lattice::torus(m, m);
    let genome = best_agent(kind);
    let dirs = kind.dir_count();

    let mut cases = Vec::new();
    for cell1 in 1..lattice.len() {
        for cell2 in 1..lattice.len() {
            if cell2 == cell1 {
                continue;
            }
            for d0 in 0..dirs {
                for d1 in 0..dirs {
                    for d2 in 0..dirs {
                        cases.push((
                            lattice.pos_at(cell1),
                            lattice.pos_at(cell2),
                            [Dir::new(d0), Dir::new(d1), Dir::new(d2)],
                        ));
                    }
                }
            }
        }
    }

    let outcomes = parallel_map(&cases, threads, |&(p1, p2, ds)| {
        let init = InitialConfig::new(vec![
            (Pos::new(0, 0), ds[0]),
            (p1, ds[1]),
            (p2, ds[2]),
        ]);
        let mut world = World::new(&cfg, genome.clone(), &init)
            .expect("enumerated configurations are valid");
        decide(&mut world, max_states)
    });

    let mut histogram = Histogram::new();
    let mut worst: Option<(Pos, Dir, Dir, u32)> = None;
    let mut solved = 0usize;
    let mut never_solves = 0usize;
    for (&(p1, _, ds), &decision) in cases.iter().zip(&outcomes) {
        match decision {
            Decision::Solved(t) => {
                solved += 1;
                histogram.record(t);
                if worst.is_none_or(|(_, _, _, wt)| t > wt) {
                    worst = Some((p1, ds[0], ds[1], t));
                }
            }
            Decision::NeverSolves { .. } => never_solves += 1,
            Decision::Undecided => {}
        }
    }
    ExhaustiveResult { kind, total: cases.len(), solved, never_solves, histogram, worst }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive proof on a small torus: every 2-agent configuration of
    /// the 8×8 field is solved by both published agents.
    #[test]
    fn both_agents_are_provably_reliable_on_8x8() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let r = exhaustive_two_agents(kind, 8, usize::MAX, 2);
            let dirs = usize::from(kind.dir_count());
            assert_eq!(r.total, 63 * dirs * dirs, "{kind}");
            assert!(r.is_proof(), "{kind}: {}/{} solved", r.solved, r.total);
            assert_eq!(r.histogram.total(), r.total as u64);
            assert!(r.worst.is_some());
        }
    }

    /// The 3-agent sweep on a tiny torus: a complete decision of all
    /// 4×4 S-grid configurations (13 440 cases).
    #[test]
    fn three_agents_decided_on_4x4() {
        let r = exhaustive_three_agents(GridKind::Square, 4, usize::MAX, 2);
        assert_eq!(r.total, 15 * 14 * 64);
        assert_eq!(r.solved + r.never_solves, r.total, "every case decided");
        // On a 4x4 torus agents are almost always within exchange reach
        // quickly; the published agents should solve the vast majority.
        assert!(r.solved * 10 > r.total * 9, "{} of {}", r.solved, r.total);
    }

    /// Translation equivariance spot-check: shifting both agents by the
    /// same offset shifts the trajectory but not the communication time.
    #[test]
    fn translation_invariance_holds() {
        let kind = GridKind::Triangulate;
        let cfg = WorldConfig::paper(kind, 16);
        let genome = best_agent(kind);
        let base = InitialConfig::new(vec![
            (Pos::new(0, 0), Dir::new(2)),
            (Pos::new(5, 9), Dir::new(4)),
        ]);
        let run = |init: &InitialConfig| {
            let mut w = World::new(&cfg, genome.clone(), init).unwrap();
            a2a_sim::run_to_completion(&mut w, 3000).t_comm
        };
        let t0 = run(&base);
        for (dx, dy) in [(3u16, 0u16), (0, 7), (11, 13)] {
            let shifted = InitialConfig::new(vec![
                (Pos::new(dx % 16, dy % 16), Dir::new(2)),
                (Pos::new((5 + dx) % 16, (9 + dy) % 16), Dir::new(4)),
            ]);
            assert_eq!(run(&shifted), t0, "shift ({dx},{dy})");
        }
    }
}

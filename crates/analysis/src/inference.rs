//! Light-weight inferential statistics for the T-vs-S comparisons:
//! seeded bootstrap confidence intervals and Welch's t statistic.
//!
//! The paper reports plain means; with our seeded configuration sets we
//! can additionally state how certain the T < S ordering is at each
//! density.

use crate::stats::Summary;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A two-sided bootstrap confidence interval for the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Nominal coverage (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval excludes `value` (e.g. 0 for a difference).
    #[must_use]
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }
}

/// Percentile-bootstrap confidence interval for the mean of `values`,
/// with `resamples` bootstrap draws at coverage `level` (seeded, hence
/// reproducible).
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `level` is outside `(0, 1)` or `resamples == 0`.
#[must_use]
pub fn bootstrap_mean_ci(
    values: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<ConfidenceInterval> {
    assert!(resamples > 0, "need at least one resample");
    assert!(0.0 < level && level < 1.0, "coverage must be in (0, 1)");
    if values.is_empty() {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = values.len();
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let sum: f64 = (0..n).map(|_| values[rng.random_range(0..n)]).sum();
            sum / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("bootstrap means are not NaN"));
    let tail = (1.0 - level) / 2.0;
    let idx = |q: f64| -> usize {
        ((q * (resamples - 1) as f64).round() as usize).min(resamples - 1)
    };
    Some(ConfidenceInterval {
        lo: means[idx(tail)],
        hi: means[idx(1.0 - tail)],
        level,
    })
}

/// Welch's two-sample t statistic and its Welch–Satterthwaite degrees of
/// freedom, for unequal variances/sizes.
///
/// Returns `None` when either sample has fewer than two observations or
/// both variances are zero.
#[must_use]
pub fn welch_t(a: &[f64], b: &[f64]) -> Option<(f64, f64)> {
    let (sa, sb) = (Summary::of(a)?, Summary::of(b)?);
    if sa.n < 2 || sb.n < 2 {
        return None;
    }
    let va = sa.std_dev.powi(2) / sa.n as f64;
    let vb = sb.std_dev.powi(2) / sb.n as f64;
    if va + vb == 0.0 {
        return None;
    }
    let t = (sa.mean - sb.mean) / (va + vb).sqrt();
    let df = (va + vb).powi(2)
        / (va.powi(2) / (sa.n as f64 - 1.0) + vb.powi(2) / (sb.n as f64 - 1.0));
    Some((t, df))
}

/// Whether Welch's test rejects equal means at the 1 % level, using the
/// normal approximation (`|t| > 2.576`) — accurate for the df ≥ 100 that
/// all our experiments have.
#[must_use]
pub fn significantly_different(a: &[f64], b: &[f64]) -> bool {
    welch_t(a, b).is_some_and(|(t, df)| df >= 30.0 && t.abs() > 2.576)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_ci_contains_the_mean_of_a_tight_sample() {
        let values: Vec<f64> = (0..200).map(|i| 50.0 + f64::from(i % 5)).collect();
        let ci = bootstrap_mean_ci(&values, 500, 0.95, 1).unwrap();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!(ci.lo <= mean && mean <= ci.hi, "{ci:?} vs {mean}");
        assert!(ci.hi - ci.lo < 1.0, "tight sample ⇒ tight interval: {ci:?}");
    }

    #[test]
    fn bootstrap_is_seed_reproducible() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_mean_ci(&values, 200, 0.9, 42).unwrap();
        let b = bootstrap_mean_ci(&values, 200, 0.9, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_empty_is_none() {
        assert_eq!(bootstrap_mean_ci(&[], 10, 0.9, 0), None);
    }

    #[test]
    fn welch_detects_separated_samples() {
        let a: Vec<f64> = (0..100).map(|i| 40.0 + f64::from(i % 7)).collect();
        let b: Vec<f64> = (0..100).map(|i| 60.0 + f64::from(i % 7)).collect();
        let (t, df) = welch_t(&a, &b).unwrap();
        assert!(t < -10.0, "t = {t}");
        assert!(df > 100.0);
        assert!(significantly_different(&a, &b));
    }

    #[test]
    fn welch_accepts_identical_distributions() {
        let a: Vec<f64> = (0..100).map(|i| 50.0 + f64::from(i % 10)).collect();
        let b = a.clone();
        let (t, _) = welch_t(&a, &b).unwrap();
        assert!(t.abs() < 1e-12);
        assert!(!significantly_different(&a, &b));
    }

    #[test]
    fn degenerate_samples_are_none() {
        assert_eq!(welch_t(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(welch_t(&[1.0, 1.0], &[1.0, 1.0]), None, "zero variance");
    }

    #[test]
    fn ci_excludes_works() {
        let ci = ConfidenceInterval { lo: 1.0, hi: 2.0, level: 0.95 };
        assert!(ci.excludes(0.0));
        assert!(!ci.excludes(1.5));
    }
}

//! Property-based tests of the analysis toolbox.

use a2a_analysis::{
    bootstrap_mean_ci, diffusion_lower_bound, welch_t, AsciiChart, Series, Summary, TextTable,
    XScale,
};
use a2a_grid::{GridKind, Lattice};
use a2a_sim::InitialConfig;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Summary statistics agree with naive recomputation.
    #[test]
    fn summary_matches_naive(values in prop::collection::vec(-1e4f64..1e4, 1..60)) {
        let s = Summary::of(&values).unwrap();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean - mean).abs() < 1e-6);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, values.len());
    }

    /// The bootstrap CI always contains values between sample min and max
    /// and brackets tighter with higher coverage demanded lower.
    #[test]
    fn bootstrap_ci_is_ordered_and_in_range(
        values in prop::collection::vec(0f64..100.0, 2..40),
        seed in any::<u64>(),
    ) {
        let narrow = bootstrap_mean_ci(&values, 200, 0.5, seed).unwrap();
        let wide = bootstrap_mean_ci(&values, 200, 0.99, seed).unwrap();
        prop_assert!(narrow.lo <= narrow.hi);
        prop_assert!(wide.lo <= narrow.lo && narrow.hi <= wide.hi, "wider coverage ⊇ narrower");
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Resample means live in [min, max] up to summation rounding
        // (mean of [v, v, v] as sum/3 can be 1 ulp outside).
        let eps = 1e-9 * max.abs().max(1.0);
        prop_assert!(wide.lo >= min - eps && wide.hi <= max + eps);
    }

    /// Welch's t is antisymmetric in its arguments.
    #[test]
    fn welch_t_is_antisymmetric(
        a in prop::collection::vec(0f64..50.0, 3..30),
        b in prop::collection::vec(10f64..80.0, 3..30),
    ) {
        if let (Some((t_ab, df_ab)), Some((t_ba, df_ba))) = (welch_t(&a, &b), welch_t(&b, &a)) {
            prop_assert!((t_ab + t_ba).abs() < 1e-9);
            prop_assert!((df_ab - df_ba).abs() < 1e-9);
        }
    }

    /// The diffusion lower bound never exceeds ⌈(D−1)/3⌉ (no pair can be
    /// farther apart than the diameter) and is 0 for single agents.
    #[test]
    fn bound_is_within_diameter(seed in any::<u64>(), k in 1usize..20) {
        let lattice = Lattice::torus(16, 16);
        let mut rng = SmallRng::seed_from_u64(seed);
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let init = InitialConfig::random(lattice, kind, k, &[], &mut rng).unwrap();
            let bound = diffusion_lower_bound(lattice, kind, &init);
            let diameter = a2a_grid::diameter(lattice, kind);
            prop_assert!(bound <= (diameter - 1).div_ceil(3));
            if k == 1 {
                prop_assert_eq!(bound, 0);
            }
        }
    }

    /// Charts render any finite series without panicking, and contain
    /// every glyph at least once.
    #[test]
    fn charts_never_panic(
        points in prop::collection::vec((1f64..1000.0, -50f64..50.0), 1..30),
        log in any::<bool>(),
    ) {
        let scale = if log { XScale::Log2 } else { XScale::Linear };
        let text = AsciiChart::new(30, 8, scale)
            .series(Series::new("s", '*', points))
            .to_string();
        prop_assert!(text.contains('*'));
        prop_assert!(text.contains("s"));
    }

    /// Tables align any cell contents.
    #[test]
    fn tables_render_arbitrary_cells(
        rows in prop::collection::vec(("[a-z0-9 ]{0,12}", "[a-z0-9 ]{0,12}"), 0..10),
    ) {
        let mut t = TextTable::new(vec!["a", "b"]);
        for (x, y) in &rows {
            t.add_row(vec![x.clone(), y.clone()]);
        }
        let text = t.to_string();
        prop_assert_eq!(text.lines().count(), rows.len() + 2);
        let md = t.to_markdown();
        prop_assert_eq!(md.lines().count(), rows.len() + 2);
    }
}

//! Property-based tests for genomes, percept encoding and mutation.

use a2a_fsm::{mutate, offspring, FsmSpec, Genome, MutationRates, Percept, TurnSet};
use a2a_grid::GridKind;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_spec() -> impl Strategy<Value = FsmSpec> {
    (
        1u8..=6,
        1u8..=3,
        prop_oneof![
            Just(TurnSet::Square),
            Just(TurnSet::TriangulateRestricted),
            Just(TurnSet::TriangulateFull),
        ],
    )
        .prop_map(|(s, c, t)| FsmSpec::new(s, c, t))
}

proptest! {
    /// Percept encoding is a bijection onto 0..2·n_colors².
    #[test]
    fn percept_encoding_is_bijective(n_colors in 1u8..=4) {
        let n = a2a_fsm::input_count(n_colors);
        let mut seen = vec![false; n];
        for blocked in [false, true] {
            for color in 0..n_colors {
                for front in 0..n_colors {
                    let x = Percept::new(blocked, color, front).encode(n_colors);
                    prop_assert!(!seen[x], "duplicate index {}", x);
                    seen[x] = true;
                    prop_assert_eq!(Percept::decode(x, n_colors), Percept::new(blocked, color, front));
                }
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Random genomes respect the spec and the digit codec round-trips
    /// for arbitrary specs.
    #[test]
    fn genome_digits_roundtrip(spec in arb_spec(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Genome::random(spec, &mut rng);
        prop_assert_eq!(g.entries().len(), spec.entry_count());
        let digits = g.to_digits();
        prop_assert_eq!(Genome::from_digits(spec, &digits), Some(g));
    }

    /// Lookup agrees with the flat entry indexing for every (x, s).
    #[test]
    fn lookup_matches_flat_index(spec in arb_spec(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Genome::random(spec, &mut rng);
        for x in 0..spec.input_count() {
            for s in 0..spec.n_states {
                prop_assert_eq!(
                    g.lookup(Percept::decode(x, spec.n_colors), s),
                    g.entry(spec.entry_index(x, s))
                );
            }
        }
    }

    /// Mutation keeps genomes valid and is deterministic under a seed.
    #[test]
    fn mutation_is_valid_and_deterministic(
        spec in arb_spec(),
        seed in any::<u64>(),
        p in 0.0f64..=1.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Genome::random(spec, &mut rng);
        let rates = MutationRates::uniform(p);
        let c1 = offspring(&g, rates, &mut SmallRng::seed_from_u64(seed ^ 1));
        let c2 = offspring(&g, rates, &mut SmallRng::seed_from_u64(seed ^ 1));
        prop_assert_eq!(&c1, &c2, "determinism");
        for e in c1.entries() {
            prop_assert!(e.next_state < spec.n_states);
            prop_assert!(e.action.set_color < spec.n_colors);
            prop_assert!(e.action.turn < spec.turn_set.cardinality());
        }
    }

    /// Applying the increment mutation `cardinality` times with p = 1
    /// returns to the original genome (the mutation is a cyclic group
    /// action per field) — exercised on the paper spec where all field
    /// cardinalities divide 4.
    #[test]
    fn full_mutation_has_finite_order(seed in any::<u64>()) {
        let spec = FsmSpec::paper(GridKind::Square);
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Genome::random(spec, &mut rng);
        let mut current = g.clone();
        for _ in 0..4 {
            mutate(&mut current, MutationRates::uniform(1.0), &mut rng);
        }
        prop_assert_eq!(current, g);
    }
}

//! The best evolved FSMs published in the paper, transcribed digit for
//! digit from Fig. 3 (S-agent) and Fig. 4 (T-agent).

use crate::genome::{Genome, TableRow};
use crate::spec::FsmSpec;
use a2a_grid::GridKind;

/// The best found reliable S-agent FSM (Fig. 3).
///
/// "This FSM represents also the best found algorithm for the S-agents."
/// Turn codes mean 0°/90°/180°/−90° for 0/1/2/3.
///
/// ```
/// use a2a_fsm::{best_s_agent, Percept};
///
/// let fsm = best_s_agent();
/// // Fig. 3, x = 0, state 0: nextstate 2, setcolor 1, move 1, turn 3.
/// let e = fsm.lookup(Percept::new(false, 0, 0), 0);
/// assert_eq!((e.next_state, e.action.set_color, e.action.mv, e.action.turn), (2, 1, true, 3));
/// ```
#[must_use]
pub fn best_s_agent() -> Genome {
    let rows = [
        //                      nextstate setcolor move    turn
        TableRow::from_digits("2311", "1100", "1101", "3010"), // x = 0
        TableRow::from_digits("0332", "0101", "0111", "1112"), // x = 1
        TableRow::from_digits("1302", "0001", "1111", "3003"), // x = 2
        TableRow::from_digits("0021", "1011", "1110", "2123"), // x = 3
        TableRow::from_digits("1220", "0000", "1111", "0121"), // x = 4
        TableRow::from_digits("2320", "0001", "0000", "3013"), // x = 5
        TableRow::from_digits("2230", "0001", "0001", "2333"), // x = 6
        TableRow::from_digits("3102", "1000", "0100", "3223"), // x = 7
    ];
    Genome::from_rows(FsmSpec::paper(GridKind::Square), &rows)
}

/// The best evolved T-agent FSM (Fig. 4).
///
/// Turn codes mean 0°/60°/180°/−60° for 0/1/2/3 (the restricted
/// triangulate turn set).
///
/// ```
/// use a2a_fsm::{best_t_agent, Percept};
///
/// let fsm = best_t_agent();
/// // Fig. 4, x = 7, state 3: nextstate 1, setcolor 0, move 1, turn 3.
/// let e = fsm.lookup(Percept::new(true, 1, 1), 3);
/// assert_eq!((e.next_state, e.action.set_color, e.action.mv, e.action.turn), (1, 0, true, 3));
/// ```
#[must_use]
pub fn best_t_agent() -> Genome {
    let rows = [
        //                      nextstate setcolor move    turn
        TableRow::from_digits("1212", "1111", "1110", "0010"), // x = 0
        TableRow::from_digits("1030", "0111", "1000", "3222"), // x = 1
        TableRow::from_digits("2103", "0011", "1111", "3001"), // x = 2
        TableRow::from_digits("1213", "0100", "0111", "0033"), // x = 3
        TableRow::from_digits("1202", "0000", "1110", "1012"), // x = 4
        TableRow::from_digits("0130", "1111", "1000", "3301"), // x = 5
        TableRow::from_digits("2211", "0010", "1110", "3013"), // x = 6
        TableRow::from_digits("2211", "1110", "1011", "2023"), // x = 7
    ];
    Genome::from_rows(FsmSpec::paper(GridKind::Triangulate), &rows)
}

/// The paper's best FSM for a grid kind.
#[must_use]
pub fn best_agent(kind: GridKind) -> Genome {
    match kind {
        GridKind::Square => best_s_agent(),
        GridKind::Triangulate => best_t_agent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percept::Percept;

    /// Full transcription check of Fig. 3 against the flat digit encoding.
    #[test]
    fn s_agent_full_table() {
        let g = best_s_agent();
        let expect: [(&str, &str, &str, &str); 8] = [
            ("2311", "1100", "1101", "3010"),
            ("0332", "0101", "0111", "1112"),
            ("1302", "0001", "1111", "3003"),
            ("0021", "1011", "1110", "2123"),
            ("1220", "0000", "1111", "0121"),
            ("2320", "0001", "0000", "3013"),
            ("2230", "0001", "0001", "2333"),
            ("3102", "1000", "0100", "3223"),
        ];
        for (x, (ns, sc, mv, tn)) in expect.iter().enumerate() {
            for s in 0..4u8 {
                let e = g.lookup(Percept::decode(x, 2), s);
                let at = |row: &str| row.as_bytes()[s as usize] - b'0';
                assert_eq!(e.next_state, at(ns), "x={x} s={s} nextstate");
                assert_eq!(e.action.set_color, at(sc), "x={x} s={s} setcolor");
                assert_eq!(u8::from(e.action.mv), at(mv), "x={x} s={s} move");
                assert_eq!(e.action.turn, at(tn), "x={x} s={s} turn");
            }
        }
    }

    /// Full transcription check of Fig. 4.
    #[test]
    fn t_agent_full_table() {
        let g = best_t_agent();
        let expect: [(&str, &str, &str, &str); 8] = [
            ("1212", "1111", "1110", "0010"),
            ("1030", "0111", "1000", "3222"),
            ("2103", "0011", "1111", "3001"),
            ("1213", "0100", "0111", "0033"),
            ("1202", "0000", "1110", "1012"),
            ("0130", "1111", "1000", "3301"),
            ("2211", "0010", "1110", "3013"),
            ("2211", "1110", "1011", "2023"),
        ];
        for (x, (ns, sc, mv, tn)) in expect.iter().enumerate() {
            for s in 0..4u8 {
                let e = g.lookup(Percept::decode(x, 2), s);
                let at = |row: &str| row.as_bytes()[s as usize] - b'0';
                assert_eq!(e.next_state, at(ns), "x={x} s={s} nextstate");
                assert_eq!(e.action.set_color, at(sc), "x={x} s={s} setcolor");
                assert_eq!(u8::from(e.action.mv), at(mv), "x={x} s={s} move");
                assert_eq!(e.action.turn, at(tn), "x={x} s={s} turn");
            }
        }
    }

    #[test]
    fn best_agent_dispatches_by_kind() {
        assert_eq!(best_agent(GridKind::Square), best_s_agent());
        assert_eq!(best_agent(GridKind::Triangulate), best_t_agent());
        assert_ne!(best_s_agent().to_digits(), best_t_agent().to_digits());
    }

    #[test]
    fn published_specs_are_papers() {
        assert_eq!(best_s_agent().spec(), FsmSpec::paper(GridKind::Square));
        assert_eq!(best_t_agent().spec(), FsmSpec::paper(GridKind::Triangulate));
    }
}

//! Genome similarity metrics, used to monitor GA pool diversity (the
//! motivation behind the paper's b=3 diversity exchange).

use crate::genome::Genome;

/// Hamming distance between two genomes: the number of differing scalar
/// fields (nextstate, setcolor, move, turn) over all entries.
///
/// Ranges from 0 (identical) to `4 · entry_count` (128 for the paper's
/// spec).
///
/// # Panics
///
/// Panics if the genomes have different specs.
///
/// ```
/// use a2a_fsm::{best_t_agent, hamming_distance};
///
/// let g = best_t_agent();
/// assert_eq!(hamming_distance(&g, &g), 0);
/// ```
#[must_use]
pub fn hamming_distance(a: &Genome, b: &Genome) -> usize {
    assert_eq!(a.spec(), b.spec(), "distance requires a common spec");
    a.entries()
        .iter()
        .zip(b.entries())
        .map(|(x, y)| {
            usize::from(x.next_state != y.next_state)
                + usize::from(x.action.set_color != y.action.set_color)
                + usize::from(x.action.mv != y.action.mv)
                + usize::from(x.action.turn != y.action.turn)
        })
        .sum()
}

/// Mean pairwise Hamming distance of a pool — the GA's diversity
/// indicator (0 when all genomes are identical).
///
/// # Panics
///
/// Panics if genomes have different specs.
#[must_use]
pub fn pool_diversity(genomes: &[&Genome]) -> f64 {
    let n = genomes.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            total += hamming_distance(genomes[i], genomes[j]);
            pairs += 1;
        }
    }
    total as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::{offspring, MutationRates};
    use crate::published::{best_s_agent, best_t_agent};
    use crate::spec::FsmSpec;
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn distance_is_zero_iff_identical() {
        let g = best_t_agent();
        assert_eq!(hamming_distance(&g, &g), 0);
        let mut rng = SmallRng::seed_from_u64(1);
        let child = offspring(&g, MutationRates::uniform(0.3), &mut rng);
        assert!(hamming_distance(&g, &child) > 0);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let spec = FsmSpec::paper(GridKind::Square);
        let a = Genome::random(spec, &mut rng);
        let b = Genome::random(spec, &mut rng);
        let d = hamming_distance(&a, &b);
        assert_eq!(d, hamming_distance(&b, &a));
        assert!(d <= 4 * spec.entry_count());
    }

    #[test]
    fn single_field_change_has_distance_one() {
        let g = best_t_agent();
        let mut h = g.clone();
        h.entry_mut(5).next_state = (g.entry(5).next_state + 1) % 4;
        assert_eq!(hamming_distance(&g, &h), 1);
    }

    #[test]
    fn diversity_of_identical_pool_is_zero() {
        let g = best_t_agent();
        assert_eq!(pool_diversity(&[&g, &g, &g]), 0.0);
        assert_eq!(pool_diversity(&[&g]), 0.0);
    }

    #[test]
    fn random_pools_are_diverse() {
        let mut rng = SmallRng::seed_from_u64(3);
        let spec = FsmSpec::paper(GridKind::Triangulate);
        let genomes: Vec<Genome> = (0..5).map(|_| Genome::random(spec, &mut rng)).collect();
        let refs: Vec<&Genome> = genomes.iter().collect();
        // Random fields match with probability 1/card; expected distance
        // is far above half the maximum of 128.
        assert!(pool_diversity(&refs) > 50.0);
    }

    #[test]
    #[should_panic(expected = "common spec")]
    fn mismatched_specs_panic() {
        let _ = hamming_distance(&best_t_agent(), &best_s_agent());
    }
}

//! The shape of an agent FSM: state count, colour count and turn set.

use crate::percept::input_count;
use crate::turnset::TurnSet;
use a2a_grid::GridKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Structural parameters of an agent-controlling Mealy FSM.
///
/// The paper fixes `n_states = 4` and `n_colors = 2` ("In order to keep the
/// control automaton simple, we restrict the number of states and actions
/// to a certain limit", Sect. 3); both remain parametric here because the
/// conclusion names "more states, more colors" as future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FsmSpec {
    /// Number of control states `|s|` (4 in the paper).
    pub n_states: u8,
    /// Number of cell colours (2 in the paper).
    pub n_colors: u8,
    /// Turn-code interpretation (also fixes the grid kind).
    pub turn_set: TurnSet,
}

impl FsmSpec {
    /// The paper's specification for a grid kind: 4 states, 2 colours and
    /// the 4-element turn set of that grid.
    ///
    /// ```
    /// use a2a_fsm::FsmSpec;
    /// use a2a_grid::GridKind;
    ///
    /// let spec = FsmSpec::paper(GridKind::Triangulate);
    /// assert_eq!((spec.n_states, spec.n_colors), (4, 2));
    /// assert_eq!(spec.input_count(), 8);
    /// assert_eq!(spec.entry_count(), 32);
    /// ```
    #[must_use]
    pub const fn paper(kind: GridKind) -> Self {
        Self {
            n_states: 4,
            n_colors: 2,
            turn_set: TurnSet::for_kind(kind),
        }
    }

    /// Creates a custom specification.
    ///
    /// # Panics
    ///
    /// Panics if `n_states` or `n_colors` is zero.
    #[must_use]
    pub fn new(n_states: u8, n_colors: u8, turn_set: TurnSet) -> Self {
        assert!(n_states > 0, "FSM needs at least one state");
        assert!(n_colors > 0, "cells need at least one colour");
        Self { n_states, n_colors, turn_set }
    }

    /// The grid kind this FSM drives agents on.
    #[must_use]
    pub const fn kind(self) -> GridKind {
        self.turn_set.kind()
    }

    /// Number of distinct input values `|x| = 2·n_colors²` (8 in the paper).
    #[must_use]
    pub fn input_count(self) -> usize {
        input_count(self.n_colors)
    }

    /// Number of distinct outputs `|y| = N_turn · N_move · N_setcolor`
    /// (16 in the paper).
    #[must_use]
    pub fn output_count(self) -> usize {
        usize::from(self.turn_set.cardinality()) * 2 * usize::from(self.n_colors)
    }

    /// Genome length: one (nextstate, action) entry per (input, state)
    /// combination — 32 in the paper (Fig. 3's index `i ∈ 0..32`).
    #[must_use]
    pub fn entry_count(self) -> usize {
        self.input_count() * usize::from(self.n_states)
    }

    /// Fig. 3's flat genome index `i` of an (input `x`, state `s`) pair:
    /// `i = x·|s| + s` (states vary fastest within an input column block).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `state` is out of range.
    #[must_use]
    pub fn entry_index(self, x: usize, state: u8) -> usize {
        assert!(x < self.input_count(), "input {x} out of range");
        assert!(state < self.n_states, "state {state} out of range");
        x * usize::from(self.n_states) + usize::from(state)
    }

    /// log₁₀ of the search-space size `K = (|s|·|y|)^(|s|·|x|)` (Sect. 4).
    ///
    /// For the paper's spec: `K = 64³² ≈ 10^57.8`.
    #[must_use]
    pub fn search_space_log10(self) -> f64 {
        let base = (usize::from(self.n_states) * self.output_count()) as f64;
        self.entry_count() as f64 * base.log10()
    }
}

impl fmt::Display for FsmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-state/{}-colour FSM for the {} grid",
            self.n_states,
            self.n_colors,
            self.kind()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_dimensions() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            let spec = FsmSpec::paper(kind);
            assert_eq!(spec.input_count(), 8);
            assert_eq!(spec.output_count(), 16);
            assert_eq!(spec.entry_count(), 32);
            assert_eq!(spec.kind(), kind);
        }
    }

    #[test]
    fn search_space_is_64_pow_32() {
        // K = (4 · 16)^(4 · 8) = 64^32; log10 = 32 · log10(64) ≈ 57.8.
        let spec = FsmSpec::paper(GridKind::Square);
        assert!((spec.search_space_log10() - 32.0 * 64f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn entry_index_matches_fig3_layout() {
        let spec = FsmSpec::paper(GridKind::Square);
        // Fig. 3: x = 0 occupies i = 0..3, x = 7 occupies i = 28..31.
        assert_eq!(spec.entry_index(0, 0), 0);
        assert_eq!(spec.entry_index(0, 3), 3);
        assert_eq!(spec.entry_index(7, 0), 28);
        assert_eq!(spec.entry_index(7, 3), 31);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_states_rejected() {
        let _ = FsmSpec::new(0, 2, TurnSet::Square);
    }

    #[test]
    fn display_names_kind() {
        let s = FsmSpec::paper(GridKind::Triangulate).to_string();
        assert!(s.contains("triangulate"), "{s}");
    }
}

//! Hand-coded reference behaviours.
//!
//! The paper evolves FSMs because hand-designing good agents is hard;
//! these baselines quantify that claim. Each is expressed in the same
//! 4-state/2-colour genome format as the evolved agents, so every
//! experiment can swap them in unchanged.

use crate::action::Action;
use crate::genome::{Entry, Genome};
use crate::spec::FsmSpec;
use a2a_grid::GridKind;

/// Builds a state-less behaviour from a per-input action table:
/// `actions[x]` is applied in every control state, and the control state
/// never changes.
fn uniform_rows(kind: GridKind, actions: impl Fn(usize) -> Action) -> Genome {
    let spec = FsmSpec::paper(kind);
    let entries = (0..spec.entry_count())
        .map(|i| {
            let x = i / usize::from(spec.n_states);
            Entry { next_state: (i % usize::from(spec.n_states)) as u8, action: actions(x) }
        })
        .collect();
    Genome::from_entries(spec, entries)
}

/// **Ballistic** agents: always move straight ahead, never turn, never
/// colour. On a torus they loop on a fixed orbit, so two parallel agents
/// may never meet — the canonical unreliable behaviour (the paper's
/// "agents can follow similar routes which are 'parallel' and therefore
/// never intersect").
#[must_use]
pub fn ballistic(kind: GridKind) -> Genome {
    uniform_rows(kind, |_| Action::new(0, true, 0))
}

/// **Bouncer** agents: move straight; when blocked, turn 180° ("back").
/// Slightly less degenerate than [`ballistic`], still colour-blind.
#[must_use]
pub fn bouncer(kind: GridKind) -> Genome {
    uniform_rows(kind, |x| {
        let blocked = x % 2 == 1;
        if blocked {
            Action::new(2, false, 0) // turn code 2 = 180° in both turn sets
        } else {
            Action::new(0, true, 0)
        }
    })
}

/// **Right-hand** agents: move straight while free, turn right when
/// blocked — the classic wall/obstacle-following heuristic.
#[must_use]
pub fn right_hand(kind: GridKind) -> Genome {
    uniform_rows(kind, |x| {
        let blocked = x % 2 == 1;
        if blocked {
            Action::new(1, false, 0) // turn code 1 = +90° (S) / +60° (T)
        } else {
            Action::new(0, true, 0)
        }
    })
}

/// **Colour-trail** agents: a hand-written pheromone strategy. Mark every
/// visited cell; on fresh (colour-0) front cells go straight, on marked
/// front cells turn right to seek unvisited ground; turn right when
/// blocked. A human's best guess at what evolution discovers.
#[must_use]
pub fn color_trail(kind: GridKind) -> Genome {
    uniform_rows(kind, |x| {
        let blocked = x % 2 == 1;
        let front_marked = (x / 4) % 2 == 1;
        if blocked {
            Action::new(1, false, 1)
        } else if front_marked {
            Action::new(1, true, 1)
        } else {
            Action::new(0, true, 1)
        }
    })
}

/// All baselines with display labels, for experiment tables.
#[must_use]
pub fn all_baselines(kind: GridKind) -> Vec<(&'static str, Genome)> {
    vec![
        ("ballistic", ballistic(kind)),
        ("bouncer", bouncer(kind)),
        ("right-hand", right_hand(kind)),
        ("color-trail", color_trail(kind)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percept::Percept;

    #[test]
    fn baselines_are_valid_paper_spec_genomes() {
        for kind in [GridKind::Square, GridKind::Triangulate] {
            for (label, g) in all_baselines(kind) {
                assert_eq!(g.spec(), FsmSpec::paper(kind), "{label}");
                assert_eq!(g.entries().len(), 32, "{label}");
            }
        }
    }

    #[test]
    fn ballistic_always_moves_straight() {
        let g = ballistic(GridKind::Square);
        for x in 0..8 {
            for s in 0..4 {
                let e = g.lookup(Percept::decode(x, 2), s);
                assert!(e.action.mv);
                assert_eq!(e.action.turn, 0);
                assert_eq!(e.action.set_color, 0);
            }
        }
    }

    #[test]
    fn bouncer_reverses_when_blocked() {
        let g = bouncer(GridKind::Triangulate);
        let blocked = g.lookup(Percept::new(true, 0, 0), 0);
        assert!(!blocked.action.mv);
        assert_eq!(blocked.action.turn, 2, "180° turn code");
        let free = g.lookup(Percept::new(false, 0, 0), 0);
        assert!(free.action.mv);
        assert_eq!(free.action.turn, 0);
    }

    #[test]
    fn color_trail_marks_and_avoids() {
        let g = color_trail(GridKind::Square);
        // Fresh ground: straight, marking.
        let fresh = g.lookup(Percept::new(false, 0, 0), 2);
        assert_eq!((fresh.action.turn, fresh.action.mv, fresh.action.set_color), (0, true, 1));
        // Marked front cell: turn right, still marking.
        let marked = g.lookup(Percept::new(false, 1, 1), 1);
        assert_eq!((marked.action.turn, marked.action.mv, marked.action.set_color), (1, true, 1));
    }

    #[test]
    fn baselines_keep_control_state_fixed() {
        for (_, g) in all_baselines(GridKind::Square) {
            for x in 0..8 {
                for s in 0..4u8 {
                    assert_eq!(g.lookup(Percept::decode(x, 2), s).next_state, s);
                }
            }
        }
    }
}

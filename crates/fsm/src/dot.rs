//! Graphviz DOT export of FSM genomes: renders a state table (Fig. 3/4)
//! as the Mealy state graph it encodes, for inspection of evolved
//! behaviours.

use crate::genome::Genome;
use crate::percept::Percept;
use std::fmt::Write;

/// Renders `genome` as a Graphviz `digraph`: one node per control state,
/// one edge per (input, state) entry labelled `x<i>/<action>` in the
/// paper's abbreviated action notation. Parallel transitions between the
/// same state pair are merged into one multi-line label.
///
/// ```
/// use a2a_fsm::{best_t_agent, to_dot};
///
/// let dot = to_dot(&best_t_agent(), "best_t_agent");
/// assert!(dot.starts_with("digraph best_t_agent {"));
/// assert!(dot.contains("s0"));
/// ```
#[must_use]
pub fn to_dot(genome: &Genome, name: &str) -> String {
    let spec = genome.spec();
    let states = usize::from(spec.n_states);
    // edge_labels[(from, to)] = lines.
    let mut edge_labels = vec![vec![Vec::<String>::new(); states]; states];
    for x in 0..spec.input_count() {
        let percept = Percept::decode(x, spec.n_colors);
        for s in 0..spec.n_states {
            let e = genome.lookup(percept, s);
            edge_labels[usize::from(s)][usize::from(e.next_state)].push(format!(
                "x{x}/{}",
                e.action.abbrev(spec.turn_set)
            ));
        }
    }
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").expect("writing to String cannot fail");
    writeln!(out, "    rankdir=LR;").expect("writing to String cannot fail");
    writeln!(out, "    node [shape=circle];").expect("writing to String cannot fail");
    for s in 0..states {
        writeln!(out, "    s{s} [label=\"{s}\"];").expect("writing to String cannot fail");
    }
    for (from, row) in edge_labels.iter().enumerate() {
        for (to, labels) in row.iter().enumerate() {
            if !labels.is_empty() {
                writeln!(
                    out,
                    "    s{from} -> s{to} [label=\"{}\"];",
                    labels.join("\\n")
                )
                .expect("writing to String cannot fail");
            }
        }
    }
    writeln!(out, "}}").expect("writing to String cannot fail");
    out
}

/// Control states reachable from the given start states by *any* input
/// sequence (static reachability over the transition table).
///
/// The paper starts agents in states `{0, 1}` (`ID mod 2`); an evolved
/// genome may leave some of its 4 states unreachable — dead genome
/// weight that mutation can repurpose.
#[must_use]
pub fn reachable_states(genome: &Genome, start: &[u8]) -> Vec<u8> {
    let spec = genome.spec();
    let mut seen = vec![false; usize::from(spec.n_states)];
    let mut stack: Vec<u8> = start
        .iter()
        .copied()
        .filter(|&s| s < spec.n_states)
        .collect();
    for &s in &stack {
        seen[usize::from(s)] = true;
    }
    while let Some(s) = stack.pop() {
        for x in 0..spec.input_count() {
            let next = genome.lookup(Percept::decode(x, spec.n_colors), s).next_state;
            if !seen[usize::from(next)] {
                seen[usize::from(next)] = true;
                stack.push(next);
            }
        }
    }
    (0..spec.n_states).filter(|&s| seen[usize::from(s)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::published::{best_s_agent, best_t_agent};
    use crate::spec::FsmSpec;
    use crate::genome::{Entry, Genome};
    use crate::action::Action;
    use a2a_grid::GridKind;

    #[test]
    fn dot_output_has_all_states_and_32_transitions() {
        let dot = to_dot(&best_s_agent(), "s_agent");
        for s in 0..4 {
            assert!(dot.contains(&format!("s{s} [label=")), "{dot}");
        }
        // 32 transition labels distributed over the merged edges.
        let label_count = dot.matches("x").count();
        assert!(label_count >= 32, "all (input,state) pairs labelled: {label_count}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn published_agents_use_all_four_states() {
        for g in [best_s_agent(), best_t_agent()] {
            assert_eq!(reachable_states(&g, &[0, 1]), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn sink_state_genome_reaches_only_itself() {
        // All entries lead to state 0: states 1..3 unreachable from 0.
        let spec = FsmSpec::paper(GridKind::Square);
        let entries = vec![
            Entry { next_state: 0, action: Action::new(0, true, 0) };
            spec.entry_count()
        ];
        let g = Genome::from_entries(spec, entries);
        assert_eq!(reachable_states(&g, &[0]), vec![0]);
        assert_eq!(reachable_states(&g, &[0, 1]), vec![0, 1]);
        assert_eq!(reachable_states(&g, &[2]), vec![0, 2]);
    }

    #[test]
    fn out_of_range_starts_are_ignored() {
        let g = best_t_agent();
        assert_eq!(reachable_states(&g, &[9]), Vec::<u8>::new());
    }
}

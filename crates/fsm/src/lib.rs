//! Agent behaviours as evolvable Mealy state machines, reproducing the
//! control model of Hoffmann & Désérable, *CA Agents for All-to-All
//! Communication Are Faster in the Triangulate Grid* (PaCT 2013), Sect. 3–4.
//!
//! An agent's "algorithm" is a finite state machine of type MEALY: the
//! input is the perception triple *(blocked, color, frontcolor)* plus the
//! own control state, the output is the next state and the action triple
//! *(move, turn, setcolor)*. The full transition table is the **genome**
//! the genetic procedure evolves.
//!
//! * [`Percept`] — the input and its Fig. 3/4 column encoding;
//! * [`Action`] / [`TurnSet`] — outputs and the paper's abbreviated
//!   notation (`Sm0`, `R.1`, …);
//! * [`FsmSpec`] / [`Genome`] — table shape and contents, with the flat
//!   genome index `i = x·|s| + s` of Fig. 3;
//! * [`mutate`] / [`MutationRates`] — the 18 % increment-mod mutation of
//!   Sect. 4;
//! * [`best_s_agent`] / [`best_t_agent`] — the published best FSMs,
//!   transcribed digit for digit.
//!
//! # Examples
//!
//! ```
//! use a2a_fsm::{best_t_agent, Percept, TurnSet};
//!
//! let fsm = best_t_agent();
//! let e = fsm.lookup(Percept::new(false, 0, 0), 0);
//! // Fig. 4, x = 0, state 0: next state 1, action Sm1 (straight, move, set colour).
//! assert_eq!(e.next_state, 1);
//! assert_eq!(e.action.abbrev(TurnSet::TriangulateRestricted), "Sm1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod action;
mod baselines;
mod dot;
mod genome;
mod mutation;
mod percept;
mod published;
mod similarity;
mod spec;
mod turnset;

pub use action::Action;
pub use baselines::{all_baselines, ballistic, bouncer, color_trail, right_hand};
pub use dot::{reachable_states, to_dot};
pub use genome::{Entry, Genome, TableRow};
pub use mutation::{mutate, offspring, MutationRates};
pub use percept::{input_count, Percept};
pub use published::{best_agent, best_s_agent, best_t_agent};
pub use similarity::{hamming_distance, pool_diversity};
pub use spec::FsmSpec;
pub use turnset::TurnSet;

//! The FSM genome: the concatenation of (nextstate, action) pairs over all
//! (input, state) combinations — "the genome of one individual, a possible
//! solution" (Sect. 4, Fig. 3).

use crate::action::Action;
use crate::percept::Percept;
use crate::spec::FsmSpec;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One genome entry: the FSM's response to one (input, state) combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Entry {
    /// Next control state `s'`.
    pub next_state: u8,
    /// Output action `y = (move, turn, setcolor)`.
    pub action: Action,
}

/// A complete Mealy-FSM behaviour: the agent's "algorithm".
///
/// Lookup is by Fig. 3's flat index `i = x·|s| + s`; the table is dense, so
/// every perception/state pair has a defined response.
///
/// # Examples
///
/// ```
/// use a2a_fsm::{Genome, FsmSpec, Percept};
/// use a2a_grid::GridKind;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let spec = FsmSpec::paper(GridKind::Square);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let g = Genome::random(spec, &mut rng);
/// let entry = g.lookup(Percept::new(false, 0, 0), 0);
/// assert!(entry.next_state < spec.n_states);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Genome {
    spec: FsmSpec,
    entries: Vec<Entry>,
}

impl Genome {
    /// Builds a genome from explicit entries in flat index order.
    ///
    /// # Panics
    ///
    /// Panics if the entry count does not match `spec.entry_count()` or an
    /// entry references an out-of-range state, colour or turn code.
    #[must_use]
    pub fn from_entries(spec: FsmSpec, entries: Vec<Entry>) -> Self {
        assert_eq!(
            entries.len(),
            spec.entry_count(),
            "genome must have exactly {} entries",
            spec.entry_count()
        );
        for (i, e) in entries.iter().enumerate() {
            assert!(e.next_state < spec.n_states, "entry {i}: bad next state");
            assert!(e.action.set_color < spec.n_colors, "entry {i}: bad colour");
            assert!(
                e.action.turn < spec.turn_set.cardinality(),
                "entry {i}: bad turn code"
            );
        }
        Self { spec, entries }
    }

    /// Builds a genome from per-input rows in the paper's table layout:
    /// for every input `x`, the four arrays give `nextstate`, `setcolor`,
    /// `move` and `turn` per state (exactly the digit rows of Fig. 3/4).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Genome::from_entries`], or if
    /// row counts do not match the spec.
    #[must_use]
    pub fn from_rows(spec: FsmSpec, rows: &[TableRow]) -> Self {
        assert_eq!(rows.len(), spec.input_count(), "one row per input value");
        let states = usize::from(spec.n_states);
        let mut entries = Vec::with_capacity(spec.entry_count());
        for row in rows {
            assert!(
                row.next_state.len() == states
                    && row.set_color.len() == states
                    && row.mv.len() == states
                    && row.turn.len() == states,
                "each row needs one digit per state"
            );
            for s in 0..states {
                entries.push(Entry {
                    next_state: row.next_state[s],
                    action: Action {
                        turn: row.turn[s],
                        mv: row.mv[s] != 0,
                        set_color: row.set_color[s],
                    },
                });
            }
        }
        Self::from_entries(spec, entries)
    }

    /// A uniformly random genome (initial GA population, Sect. 4).
    #[must_use]
    pub fn random<R: Rng + ?Sized>(spec: FsmSpec, rng: &mut R) -> Self {
        let entries = (0..spec.entry_count())
            .map(|_| Entry {
                next_state: rng.random_range(0..spec.n_states),
                action: Action {
                    turn: rng.random_range(0..spec.turn_set.cardinality()),
                    mv: rng.random_bool(0.5),
                    set_color: rng.random_range(0..spec.n_colors),
                },
            })
            .collect();
        Self { spec, entries }
    }

    /// The structural parameters of this genome.
    #[must_use]
    pub fn spec(&self) -> FsmSpec {
        self.spec
    }

    /// The FSM's response for a perception and control state.
    ///
    /// # Panics
    ///
    /// Panics if `state ≥ spec.n_states` or the percept's colours exceed
    /// the spec's colour count.
    #[must_use]
    pub fn lookup(&self, percept: Percept, state: u8) -> Entry {
        let x = percept.encode(self.spec.n_colors);
        self.entries[self.spec.entry_index(x, state)]
    }

    /// Entry at a flat genome index (Fig. 3's `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ spec.entry_count()`.
    #[must_use]
    pub fn entry(&self, i: usize) -> Entry {
        self.entries[i]
    }

    /// Mutable entry access for mutation operators.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ spec.entry_count()`.
    #[must_use]
    pub fn entry_mut(&mut self, i: usize) -> &mut Entry {
        &mut self.entries[i]
    }

    /// All entries in flat index order.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Serialises the genome as a flat digit string (4 digits per entry:
    /// nextstate, setcolor, move, turn), a compact reproducible format for
    /// logs and EXPERIMENTS.md.
    #[must_use]
    pub fn to_digits(&self) -> String {
        let mut s = String::with_capacity(self.entries.len() * 4);
        for e in &self.entries {
            use std::fmt::Write;
            write!(
                s,
                "{}{}{}{}",
                e.next_state,
                e.action.set_color,
                u8::from(e.action.mv),
                e.action.turn
            )
            .expect("writing to String cannot fail");
        }
        s
    }

    /// Parses a digit string produced by [`Genome::to_digits`].
    ///
    /// Returns `None` if the length or any digit is inconsistent with
    /// `spec`.
    #[must_use]
    pub fn from_digits(spec: FsmSpec, digits: &str) -> Option<Self> {
        let d: Vec<u8> = digits
            .chars()
            .map(|c| c.to_digit(10).map(|v| v as u8))
            .collect::<Option<_>>()?;
        if d.len() != spec.entry_count() * 4 {
            return None;
        }
        let entries: Vec<Entry> = d
            .chunks_exact(4)
            .map(|c| Entry {
                next_state: c[0],
                action: Action { set_color: c[1], mv: c[2] != 0, turn: c[3] },
            })
            .collect();
        let ok = entries.iter().all(|e| {
            e.next_state < spec.n_states
                && e.action.set_color < spec.n_colors
                && e.action.turn < spec.turn_set.cardinality()
        });
        ok.then_some(Self { spec, entries })
    }
}

/// One per-input row of a paper-style state table (Fig. 3/4), used with
/// [`Genome::from_rows`]. Each field holds one digit per control state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// `nextstate` digits per state.
    pub next_state: Vec<u8>,
    /// `setcolor` digits per state.
    pub set_color: Vec<u8>,
    /// `move` digits per state.
    pub mv: Vec<u8>,
    /// `turn` digits per state.
    pub turn: Vec<u8>,
}

impl TableRow {
    /// Builds a row from the four digit strings as printed in the paper,
    /// e.g. `TableRow::from_digits("2311", "1100", "1101", "3010")`.
    ///
    /// # Panics
    ///
    /// Panics if any character is not a digit.
    #[must_use]
    pub fn from_digits(next_state: &str, set_color: &str, mv: &str, turn: &str) -> Self {
        let parse = |s: &str| -> Vec<u8> {
            s.chars()
                .map(|c| c.to_digit(10).expect("table rows are decimal digits") as u8)
                .collect()
        };
        Self {
            next_state: parse(next_state),
            set_color: parse(set_color),
            mv: parse(mv),
            turn: parse(turn),
        }
    }
}

impl fmt::Display for Genome {
    /// Renders the genome as a paper-style state table (Fig. 3/4 layout).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let spec = self.spec;
        let states = usize::from(spec.n_states);
        write!(f, "{:<10}", "x")?;
        for x in 0..spec.input_count() {
            write!(f, " | {x:^width$}", width = states)?;
        }
        writeln!(f)?;
        for (label, digit) in [
            ("blocked", 0usize),
            ("color", 1),
            ("frontcolor", 2),
        ] {
            write!(f, "{label:<10}")?;
            for x in 0..spec.input_count() {
                let p = Percept::decode(x, spec.n_colors);
                let v = match digit {
                    0 => u8::from(p.blocked),
                    1 => p.color,
                    _ => p.front_color,
                };
                write!(f, " | {v:^width$}", width = states)?;
            }
            writeln!(f)?;
        }
        let mut line = |label: &str, get: &dyn Fn(Entry) -> u8| -> fmt::Result {
            write!(f, "{label:<10}")?;
            for x in 0..spec.input_count() {
                write!(f, " | ")?;
                for s in 0..states {
                    let e = self.entries[spec.entry_index(x, s as u8)];
                    write!(f, "{}", get(e))?;
                }
            }
            writeln!(f)
        };
        line("nextstate", &|e| e.next_state)?;
        line("setcolor", &|e| e.action.set_color)?;
        line("move", &|e| u8::from(e.action.mv))?;
        line("turn", &|e| e.action.turn)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn spec() -> FsmSpec {
        FsmSpec::paper(GridKind::Square)
    }

    #[test]
    fn random_genomes_are_valid_and_seeded_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let ga = Genome::random(spec(), &mut a);
        let gb = Genome::random(spec(), &mut b);
        assert_eq!(ga, gb);
        assert_eq!(ga.entries().len(), 32);
    }

    #[test]
    fn from_rows_matches_lookup() {
        let row = TableRow::from_digits("2311", "1100", "1101", "3010");
        let rows: Vec<TableRow> = (0..8).map(|_| row.clone()).collect();
        let g = Genome::from_rows(spec(), &rows);
        // State 2 of any input: nextstate 1, setcolor 0, move 0, turn 1.
        let e = g.lookup(Percept::new(false, 1, 1), 2);
        assert_eq!(e.next_state, 1);
        assert_eq!(e.action, Action::new(1, false, 0));
    }

    #[test]
    fn digits_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = Genome::random(spec(), &mut rng);
        let digits = g.to_digits();
        assert_eq!(digits.len(), 32 * 4);
        assert_eq!(Genome::from_digits(spec(), &digits), Some(g));
    }

    #[test]
    fn from_digits_rejects_bad_input() {
        assert_eq!(Genome::from_digits(spec(), "12"), None);
        let mut rng = SmallRng::seed_from_u64(5);
        let g = Genome::random(spec(), &mut rng);
        let mut digits = g.to_digits();
        // Corrupt a nextstate digit to 9 (≥ n_states).
        digits.replace_range(0..1, "9");
        assert_eq!(Genome::from_digits(spec(), &digits), None);
    }

    #[test]
    #[should_panic(expected = "exactly 32 entries")]
    fn wrong_entry_count_panics() {
        let _ = Genome::from_entries(spec(), vec![Entry::default(); 31]);
    }

    #[test]
    fn display_renders_all_rows() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = Genome::random(spec(), &mut rng);
        let table = g.to_string();
        for label in ["blocked", "color", "frontcolor", "nextstate", "setcolor", "move", "turn"] {
            assert!(table.contains(label), "missing row {label}:\n{table}");
        }
    }
}

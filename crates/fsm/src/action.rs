//! Agent actions (Sect. 3, "Actions"): the independent triple
//! *(turn, move, setcolor)*, written in the paper's abbreviated form such
//! as `Sm0` (straight, move, reset colour) or `R.1` (right, wait, set
//! colour).

use crate::turnset::TurnSet;
use serde::{Deserialize, Serialize};

/// One agent action: turn code, move flag and colour to write.
///
/// With the paper's parameters (4 turn codes, binary move, binary colour)
/// there are 16 possible actions:
/// `{Sm0, Sm1, S.0, S.1, Rm0, …, L.1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Action {
    /// Turn code, interpreted through a [`TurnSet`].
    pub turn: u8,
    /// Whether the agent attempts to move into its front cell.
    pub mv: bool,
    /// Colour written to the agent's current cell.
    pub set_color: u8,
}

impl Action {
    /// Creates an action.
    #[must_use]
    pub const fn new(turn: u8, mv: bool, set_color: u8) -> Self {
        Self { turn, mv, set_color }
    }

    /// The paper's abbreviated notation, e.g. `Sm0` or `L.1`.
    ///
    /// ```
    /// use a2a_fsm::{Action, TurnSet};
    ///
    /// let a = Action::new(1, true, 0);
    /// assert_eq!(a.abbrev(TurnSet::Square), "Rm0");
    /// assert_eq!(Action::new(0, false, 1).abbrev(TurnSet::Square), "S.1");
    /// ```
    #[must_use]
    pub fn abbrev(self, turn_set: TurnSet) -> String {
        format!(
            "{}{}{}",
            turn_set.letter(self.turn),
            if self.mv { 'm' } else { '.' },
            self.set_color
        )
    }

    /// Parses the abbreviated notation back into an action.
    ///
    /// Returns `None` for malformed strings or letters outside `turn_set`.
    #[must_use]
    pub fn parse_abbrev(s: &str, turn_set: TurnSet) -> Option<Self> {
        let mut chars = s.chars();
        let turn = turn_set.code_for_letter(chars.next()?)?;
        let mv = match chars.next()? {
            'm' => true,
            '.' => false,
            _ => return None,
        };
        let set_color = chars.next()?.to_digit(10)? as u8;
        if chars.next().is_some() {
            return None;
        }
        Some(Self { turn, mv, set_color })
    }

    /// Enumerates every action expressible with the given cardinalities
    /// (`|y| = N_turn · N_move · N_setcolor`, 16 in the paper).
    pub fn all(turn_set: TurnSet, n_colors: u8) -> impl Iterator<Item = Action> {
        (0..turn_set.cardinality()).flat_map(move |turn| {
            [false, true].into_iter().flat_map(move |mv| {
                (0..n_colors).map(move |set_color| Action { turn, mv, set_color })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_action_set_has_16_elements() {
        let all: Vec<Action> = Action::all(TurnSet::Square, 2).collect();
        assert_eq!(all.len(), 16);
        let abbrevs: Vec<String> = all.iter().map(|a| a.abbrev(TurnSet::Square)).collect();
        // Spot-check against the set listed in Sect. 3.
        for expected in ["Sm0", "Sm1", "S.0", "S.1", "Rm0", "Bm1", "L.1"] {
            assert!(abbrevs.iter().any(|a| a == expected), "{expected} missing");
        }
    }

    #[test]
    fn abbrev_roundtrip_all_turnsets() {
        for ts in [TurnSet::Square, TurnSet::TriangulateRestricted, TurnSet::TriangulateFull] {
            for action in Action::all(ts, 2) {
                let s = action.abbrev(ts);
                assert_eq!(Action::parse_abbrev(&s, ts), Some(action), "{s}");
            }
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        let ts = TurnSet::Square;
        assert_eq!(Action::parse_abbrev("", ts), None);
        assert_eq!(Action::parse_abbrev("Xm0", ts), None);
        assert_eq!(Action::parse_abbrev("Sq0", ts), None);
        assert_eq!(Action::parse_abbrev("Sm", ts), None);
        assert_eq!(Action::parse_abbrev("Sm01", ts), None);
        // 'r' (+120°) is only valid in the full T turn set.
        assert_eq!(Action::parse_abbrev("rm0", ts), None);
        assert!(Action::parse_abbrev("rm0", TurnSet::TriangulateFull).is_some());
    }
}

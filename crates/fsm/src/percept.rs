//! The agent's local perception and its encoding as the FSM input index
//! `x` (Sect. 3, "Input Information" / "Control FSM").
//!
//! The paper's input is the triple *(blocked, color, frontcolor)* with
//! binary colours, giving 8 input values laid out as the columns of
//! Fig. 3/4: `x = blocked + 2·color + 4·frontcolor`. This module keeps the
//! colour cardinality parametric (the conclusion lists "more colors" as
//! future work) while defaulting to the paper's 2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What an agent perceives before acting.
///
/// * `blocked` — the inverse move condition: `true` when the agent cannot
///   move (agent in front, obstacle/border, or lost the conflict
///   arbitration);
/// * `color` — colour of the cell the agent is on;
/// * `front_color` — colour of the cell ahead (in the moving direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Percept {
    /// Inverse move condition.
    pub blocked: bool,
    /// Colour of the agent's own cell.
    pub color: u8,
    /// Colour of the front cell. For a bordered field the front cell may
    /// not exist; the convention is to perceive colour 0 there (the agent
    /// is necessarily `blocked` in that case).
    pub front_color: u8,
}

impl Percept {
    /// Creates a perception triple.
    #[must_use]
    pub const fn new(blocked: bool, color: u8, front_color: u8) -> Self {
        Self { blocked, color, front_color }
    }

    /// Encodes the perception as the input index `x` for `n_colors`
    /// possible cell colours.
    ///
    /// For the paper's `n_colors = 2` this is exactly the Fig. 3/4 column
    /// order: `x = blocked + 2·color + 4·frontcolor`.
    ///
    /// # Panics
    ///
    /// Panics if a colour is `≥ n_colors`.
    ///
    /// ```
    /// use a2a_fsm::Percept;
    ///
    /// assert_eq!(Percept::new(false, 0, 0).encode(2), 0);
    /// assert_eq!(Percept::new(true, 0, 0).encode(2), 1);
    /// assert_eq!(Percept::new(false, 1, 0).encode(2), 2);
    /// assert_eq!(Percept::new(true, 1, 1).encode(2), 7);
    /// ```
    #[must_use]
    pub fn encode(self, n_colors: u8) -> usize {
        assert!(
            self.color < n_colors && self.front_color < n_colors,
            "colour out of range: {self:?} with n_colors = {n_colors}"
        );
        usize::from(self.blocked)
            + 2 * (usize::from(self.color) + usize::from(n_colors) * usize::from(self.front_color))
    }

    /// Decodes an input index back into a perception triple
    /// (inverse of [`Percept::encode`]).
    ///
    /// # Panics
    ///
    /// Panics if `x ≥ 2·n_colors²`.
    #[must_use]
    pub fn decode(x: usize, n_colors: u8) -> Self {
        assert!(x < input_count(n_colors), "input index {x} out of range");
        let blocked = x % 2 == 1;
        let rest = x / 2;
        let color = (rest % usize::from(n_colors)) as u8;
        let front_color = (rest / usize::from(n_colors)) as u8;
        Self { blocked, color, front_color }
    }
}

impl fmt::Display for Percept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} c{} f{}]",
            if self.blocked { "blk" } else { "free" },
            self.color,
            self.front_color
        )
    }
}

/// Number of distinct input values `|x| = 2 · n_colors²` (8 in the paper).
#[must_use]
pub fn input_count(n_colors: u8) -> usize {
    2 * usize::from(n_colors) * usize::from(n_colors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_column_order() {
        // Fig. 3 header: x = 0..7 maps to (blocked, color, frontcolor) =
        // (0,0,0) (1,0,0) (0,1,0) (1,1,0) (0,0,1) (1,0,1) (0,1,1) (1,1,1).
        let expected = [
            (false, 0, 0),
            (true, 0, 0),
            (false, 1, 0),
            (true, 1, 0),
            (false, 0, 1),
            (true, 0, 1),
            (false, 1, 1),
            (true, 1, 1),
        ];
        for (x, &(b, c, fc)) in expected.iter().enumerate() {
            let p = Percept::new(b, c, fc);
            assert_eq!(p.encode(2), x);
            assert_eq!(Percept::decode(x, 2), p);
        }
    }

    #[test]
    fn encode_decode_roundtrip_multi_color() {
        for n_colors in 1..=4u8 {
            for x in 0..input_count(n_colors) {
                assert_eq!(Percept::decode(x, n_colors).encode(n_colors), x);
            }
        }
    }

    #[test]
    fn input_count_matches_paper() {
        assert_eq!(input_count(2), 8);
        assert_eq!(input_count(1), 2); // colour-less ablation
        assert_eq!(input_count(3), 18);
    }

    #[test]
    #[should_panic(expected = "colour out of range")]
    fn encode_validates_colors() {
        let _ = Percept::new(false, 2, 0).encode(2);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Percept::new(true, 1, 0).to_string(), "[blk c1 f0]");
    }
}

//! Turn sets: the mapping from genome turn codes to direction deltas.
//!
//! The paper keeps the turn cardinality at 4 for both grids so S- and
//! T-agents have "the same complexity of abilities" (Sect. 3): the S-agent
//! may turn to any of its 4 directions, the T-agent to `{0°, 60°, 180°,
//! −60°}` (±120° excluded). The full 6-turn T-set is provided for the
//! design-choice ablation.

use a2a_grid::GridKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A mapping from genome turn codes `0..cardinality` to rotational
/// direction deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TurnSet {
    /// S-agent turns: `turn ∈ {0,1,2,3}` → `0°/90°/180°/−90°` (Fig. 3).
    Square,
    /// T-agent turns of the paper: codes `{0,1,2,3}` → deltas `{0,1,3,5}`
    /// in 60° steps, i.e. `0°/60°/180°/−60°` (Fig. 4).
    TriangulateRestricted,
    /// All six T-grid turns (ablation; not used by the paper's agents).
    TriangulateFull,
}

impl TurnSet {
    /// The paper's turn set for a grid kind.
    #[must_use]
    pub const fn for_kind(kind: GridKind) -> Self {
        match kind {
            GridKind::Square => TurnSet::Square,
            GridKind::Triangulate => TurnSet::TriangulateRestricted,
        }
    }

    /// The grid kind this turn set applies to.
    #[must_use]
    pub const fn kind(self) -> GridKind {
        match self {
            TurnSet::Square => GridKind::Square,
            TurnSet::TriangulateRestricted | TurnSet::TriangulateFull => GridKind::Triangulate,
        }
    }

    /// Number of distinct turn codes a genome can hold (`N_turn`).
    #[must_use]
    pub const fn cardinality(self) -> u8 {
        match self {
            TurnSet::Square | TurnSet::TriangulateRestricted => 4,
            TurnSet::TriangulateFull => 6,
        }
    }

    /// Direction delta (in rotational steps of the grid) for a turn code.
    ///
    /// # Panics
    ///
    /// Panics if `code ≥ self.cardinality()`.
    #[must_use]
    pub fn delta(self, code: u8) -> u8 {
        assert!(code < self.cardinality(), "turn code {code} out of range for {self}");
        match self {
            TurnSet::Square | TurnSet::TriangulateFull => code,
            TurnSet::TriangulateRestricted => [0, 1, 3, 5][code as usize],
        }
    }

    /// One-letter mnemonic used in the paper's action abbreviations:
    /// `S`(traight), `R`(ight), `B`(ack), `L`(eft); the full T-set extends
    /// this with `r`/`l` for the ±120° turns.
    #[must_use]
    pub fn letter(self, code: u8) -> char {
        let n = self.kind().dir_count();
        let delta = self.delta(code);
        if delta == 0 {
            'S'
        } else if delta == n / 2 {
            'B'
        } else if delta == 1 {
            'R'
        } else if delta == n - 1 {
            'L'
        } else if delta < n / 2 {
            'r'
        } else {
            'l'
        }
    }

    /// Parses a mnemonic letter back to a turn code.
    #[must_use]
    pub fn code_for_letter(self, letter: char) -> Option<u8> {
        (0..self.cardinality()).find(|&c| self.letter(c) == letter)
    }
}

impl fmt::Display for TurnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TurnSet::Square => "square turns",
            TurnSet::TriangulateRestricted => "triangulate turns {0,1,3,5}",
            TurnSet::TriangulateFull => "triangulate turns {0..5}",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_deltas_are_quarter_turns() {
        let ts = TurnSet::Square;
        assert_eq!((0..4).map(|c| ts.delta(c)).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn restricted_t_deltas_skip_120_degrees() {
        // Fig. 4 caption: turn = 0,1,2,3 mean 0°/60°/180°/−60°.
        let ts = TurnSet::TriangulateRestricted;
        assert_eq!((0..4).map(|c| ts.delta(c)).collect::<Vec<_>>(), vec![0, 1, 3, 5]);
    }

    #[test]
    fn letters_follow_paper_mnemonics() {
        for ts in [TurnSet::Square, TurnSet::TriangulateRestricted] {
            let letters: Vec<char> = (0..4).map(|c| ts.letter(c)).collect();
            assert_eq!(letters, vec!['S', 'R', 'B', 'L'], "{ts}");
        }
        let full: Vec<char> = (0..6).map(|c| TurnSet::TriangulateFull.letter(c)).collect();
        assert_eq!(full, vec!['S', 'R', 'r', 'B', 'l', 'L']);
    }

    #[test]
    fn letter_roundtrip() {
        for ts in [TurnSet::Square, TurnSet::TriangulateRestricted, TurnSet::TriangulateFull] {
            for code in 0..ts.cardinality() {
                assert_eq!(ts.code_for_letter(ts.letter(code)), Some(code), "{ts} code {code}");
            }
            assert_eq!(ts.code_for_letter('x'), None);
        }
    }

    #[test]
    fn for_kind_picks_paper_sets() {
        assert_eq!(TurnSet::for_kind(GridKind::Square), TurnSet::Square);
        assert_eq!(
            TurnSet::for_kind(GridKind::Triangulate),
            TurnSet::TriangulateRestricted
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delta_validates_code() {
        let _ = TurnSet::Square.delta(4);
    }
}

//! The paper's mutation operator (Sect. 4): every genome field is
//! independently incremented modulo its cardinality with a fixed
//! probability — "we achieved good results with p₁ = p₂ = p₃ = p₄ = 18%".

use crate::genome::Genome;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Per-field mutation probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutationRates {
    /// `p₁`: probability of `nextstate ← nextstate + 1 mod N_states`.
    pub next_state: f64,
    /// `p₂`: probability of `setcolor ← setcolor + 1 mod N_setcolor`.
    pub set_color: f64,
    /// `p₃`: probability of `move ← move + 1 mod N_move`.
    pub mv: f64,
    /// `p₄`: probability of `turn ← turn + 1 mod N_turn`.
    pub turn: f64,
}

impl MutationRates {
    /// The paper's uniform 18 % rates.
    #[must_use]
    pub const fn paper() -> Self {
        Self::uniform(0.18)
    }

    /// The same probability for all four fields.
    #[must_use]
    pub const fn uniform(p: f64) -> Self {
        Self { next_state: p, set_color: p, mv: p, turn: p }
    }

    /// Validates that every probability lies in `[0, 1]`.
    #[must_use]
    pub fn is_valid(self) -> bool {
        [self.next_state, self.set_color, self.mv, self.turn]
            .iter()
            .all(|p| (0.0..=1.0).contains(p))
    }
}

impl Default for MutationRates {
    fn default() -> Self {
        Self::paper()
    }
}

/// Mutates `genome` in place: each field of each entry is incremented
/// modulo its cardinality with the corresponding probability.
///
/// # Panics
///
/// Panics if `rates` contains a probability outside `[0, 1]`.
pub fn mutate<R: Rng + ?Sized>(genome: &mut Genome, rates: MutationRates, rng: &mut R) {
    assert!(rates.is_valid(), "mutation probabilities must lie in [0, 1]");
    let spec = genome.spec();
    let n_states = spec.n_states;
    let n_colors = spec.n_colors;
    let n_turns = spec.turn_set.cardinality();
    for i in 0..spec.entry_count() {
        let e = genome.entry_mut(i);
        if rng.random_bool(rates.next_state) {
            e.next_state = (e.next_state + 1) % n_states;
        }
        if rng.random_bool(rates.set_color) {
            e.action.set_color = (e.action.set_color + 1) % n_colors;
        }
        if rng.random_bool(rates.mv) {
            e.action.mv = !e.action.mv;
        }
        if rng.random_bool(rates.turn) {
            e.action.turn = (e.action.turn + 1) % n_turns;
        }
    }
}

/// Returns a mutated copy ("offspring") of `genome`.
#[must_use]
pub fn offspring<R: Rng + ?Sized>(genome: &Genome, rates: MutationRates, rng: &mut R) -> Genome {
    let mut child = genome.clone();
    mutate(&mut child, rates, rng);
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FsmSpec;
    use a2a_grid::GridKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn random_genome(seed: u64) -> Genome {
        let mut rng = SmallRng::seed_from_u64(seed);
        Genome::random(FsmSpec::paper(GridKind::Triangulate), &mut rng)
    }

    #[test]
    fn zero_rate_is_identity() {
        let g = random_genome(1);
        let mut rng = SmallRng::seed_from_u64(2);
        let child = offspring(&g, MutationRates::uniform(0.0), &mut rng);
        assert_eq!(child, g);
    }

    #[test]
    fn full_rate_increments_every_field() {
        let g = random_genome(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let child = offspring(&g, MutationRates::uniform(1.0), &mut rng);
        for i in 0..g.spec().entry_count() {
            let (a, b) = (g.entry(i), child.entry(i));
            assert_eq!(b.next_state, (a.next_state + 1) % 4);
            assert_eq!(b.action.set_color, (a.action.set_color + 1) % 2);
            assert_eq!(b.action.mv, !a.action.mv);
            assert_eq!(b.action.turn, (a.action.turn + 1) % 4);
        }
    }

    #[test]
    fn mutated_genomes_stay_valid() {
        let g = random_genome(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut current = g;
        for _ in 0..50 {
            mutate(&mut current, MutationRates::paper(), &mut rng);
        }
        let spec = current.spec();
        for e in current.entries() {
            assert!(e.next_state < spec.n_states);
            assert!(e.action.set_color < spec.n_colors);
            assert!(e.action.turn < spec.turn_set.cardinality());
        }
    }

    #[test]
    fn mutation_rate_is_roughly_18_percent() {
        let g = random_genome(7);
        let mut rng = SmallRng::seed_from_u64(8);
        let trials = 2000;
        let mut changed = 0usize;
        for _ in 0..trials {
            let child = offspring(&g, MutationRates::paper(), &mut rng);
            changed += (0..32)
                .filter(|&i| child.entry(i).next_state != g.entry(i).next_state)
                .count();
        }
        let rate = changed as f64 / (trials * 32) as f64;
        assert!((rate - 0.18).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_rates_panic() {
        let mut g = random_genome(9);
        let mut rng = SmallRng::seed_from_u64(10);
        mutate(&mut g, MutationRates::uniform(1.5), &mut rng);
    }
}

#!/bin/bash
# Regenerates every experiment output recorded in EXPERIMENTS.md.
set -x
cd /root/repo
R=results
cargo run --release -p a2a-bench --bin fig2_distances              > $R/fig2_distances.txt 2>&1
cargo run --release -p a2a-bench --bin table1_fig5 -- --full       > $R/table1_fig5.txt 2>&1
cargo run --release -p a2a-bench --bin grid33 -- --full            > $R/grid33.txt 2>&1
cargo run --release -p a2a-bench --bin fig6_fig7_traces            > $R/fig6_fig7.txt 2>&1
cargo run --release -p a2a-bench --bin ablation_colors     -- --configs 150 > $R/ablation_colors.txt 2>&1
cargo run --release -p a2a-bench --bin ablation_init_states -- --configs 150 > $R/ablation_init_states.txt 2>&1
cargo run --release -p a2a-bench --bin ablation_design     -- --configs 150 > $R/ablation_design.txt 2>&1
cargo run --release -p a2a-bench --bin ext_borders_obstacles -- --configs 100 > $R/ext_borders_obstacles.txt 2>&1
cargo run --release -p a2a-bench --bin baselines_bounds    -- --configs 150 > $R/baselines_bounds.txt 2>&1
cargo run --release -p a2a-bench --bin evolve_run -- --configs 100 --generations 150 --runs 4 > $R/evolve_run.txt 2>&1
cargo run --release -p a2a-bench --bin ext_time_shuffle    -- --configs 60 > $R/ext_time_shuffle.txt 2>&1
cargo run --release -p a2a-bench --bin ext_future_work     -- --configs 40 > $R/ext_future_work.txt 2>&1
echo ALL-DONE

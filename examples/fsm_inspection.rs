//! Inspecting the published best FSMs: paper-style state tables, the
//! Graphviz state graph, static reachability, and which genome rows
//! actually execute ("dead rows" are free mutation targets).
//!
//! ```text
//! cargo run --release --example fsm_inspection
//! ```

use a2a::analysis::profile_usage;
use a2a::fsm::{reachable_states, to_dot};
use a2a::prelude::*;

fn main() -> Result<(), SimError> {
    for kind in [GridKind::Triangulate, GridKind::Square] {
        let genome = best_agent(kind);
        println!("=== best {}-agent (Fig. {}) ===\n", kind.label(), match kind {
            GridKind::Square => 3,
            GridKind::Triangulate => 4,
        });
        println!("{genome}");
        println!(
            "states reachable from the paper's ID mod 2 starts {{0, 1}}: {:?}",
            reachable_states(&genome, &[0, 1])
        );
        println!(
            "search space of this spec: 10^{:.1} genomes",
            genome.spec().search_space_log10()
        );

        // Which of the 32 rows actually fire over 50 configurations?
        let env = WorldConfig::paper(kind, 16);
        let configs = a2a::sim::paper_config_set(env.lattice, kind, 8, 50, 2013)?;
        let usage = profile_usage(&env, &genome, &configs, 1000, 1);
        println!(
            "usage over {} runs: {} dead rows, top-8 rows take {:.0}% of decisions",
            usage.configs,
            usage.dead_entries().len(),
            usage.concentration(8) * 100.0
        );

        // Graphviz export (pipe into `dot -Tsvg` to draw it).
        let dot = to_dot(&genome, &format!("best_{}_agent", kind.label()));
        println!("\nGraphviz (first lines):");
        for line in dot.lines().take(8) {
            println!("  {line}");
        }
        println!("  …\n");
    }
    Ok(())
}

//! Reproduces the Fig. 6 / Fig. 7 qualitative result: two agents build
//! colour "streets" in the square grid and honeycomb-like networks in the
//! triangulate grid, and the T-pair finds each other much faster.
//!
//! ```text
//! cargo run --release --example honeycomb_trace
//! ```

use a2a::analysis::experiments::traces;
use a2a::prelude::*;

fn main() -> Result<(), SimError> {
    // Fig. 6: S-grid, two agents, paper's special configuration needs 114
    // steps. We search a seeded stream for a configuration with the same
    // communication time and replay it with snapshots.
    println!("=== Fig. 6: S-grid streets (target 114 steps) ===\n");
    let fig6 = traces::fig6(2013, 500)?;
    for snap in &fig6.snapshots {
        println!("{snap}\n");
    }
    println!(
        "S-pair communication time: {} steps\n",
        fig6.outcome.t_comm.expect("trace configurations are successful")
    );

    println!("=== Fig. 7: T-grid honeycombs (target 44 steps) ===\n");
    let fig7 = traces::fig7(2013, 500)?;
    for snap in &fig7.snapshots {
        println!("{snap}\n");
    }
    println!(
        "T-pair communication time: {} steps",
        fig7.outcome.t_comm.expect("trace configurations are successful")
    );
    println!("\nPaper: 114 steps (S) vs 44 steps (T) for its special configurations.");
    Ok(())
}

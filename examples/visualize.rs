//! Produces SVG artefacts of a simulation: a field snapshot (colour
//! flags + visited heat + agents) and the agents' trajectory plot —
//! graphical counterparts of the paper's Fig. 6/7.
//!
//! ```text
//! cargo run --release --example visualize [out_dir]
//! ```

use a2a::prelude::*;
use a2a::sim::record_trajectory;
use a2a_viz::{render_field, render_trajectory, Theme};
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf =
        std::env::args().nth(1).unwrap_or_else(|| "results".to_string()).into();
    fs::create_dir_all(&out_dir)?;
    let theme = Theme::default();

    for (kind, stem) in [(GridKind::Triangulate, "t_demo"), (GridKind::Square, "s_demo")] {
        // A four-agent run, recorded step by step.
        let mut world = Scenario::new(kind).agents(4).seed(2013).world()?;
        let (outcome, trajectory) = record_trajectory(&mut world, 2000);

        let field = render_field(&world, &theme);
        let paths = render_trajectory(world.lattice(), &trajectory, &theme);
        let field_file = out_dir.join(format!("{stem}_field.svg"));
        let paths_file = out_dir.join(format!("{stem}_paths.svg"));
        fs::write(&field_file, field)?;
        fs::write(&paths_file, paths)?;
        println!(
            "{}-grid: solved in {:?} steps, mobility {:.2} -> {} and {}",
            kind.label(),
            outcome.t_comm,
            trajectory.mobility(),
            field_file.display(),
            paths_file.display(),
        );
    }
    println!("\nOpen the SVGs in a browser; the honeycomb/street structure of");
    println!("Fig. 6/7 appears in the visited heat and the path plots.");
    Ok(())
}

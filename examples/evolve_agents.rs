//! Runs the paper's genetic procedure (Sect. 4) at laptop scale: evolve
//! T-agents from scratch on a reduced configuration set and compare the
//! result against the published best FSM.
//!
//! ```text
//! cargo run --release --example evolve_agents
//! ```
//!
//! The paper evolved on 1003 configurations for many generations; this
//! example uses 60 configurations and 120 generations so it finishes in
//! about a minute, and then *validates* the winner on a fresh set.

use a2a::ga::{default_threads, Evaluator, Evolution, GaConfig};
use a2a::prelude::*;

fn main() -> Result<(), SimError> {
    let kind = GridKind::Triangulate;
    let env = WorldConfig::paper(kind, 16);
    let train = a2a::sim::paper_config_set(env.lattice, kind, 8, 60, 4242)?;
    let threads = default_threads();

    let ga = Evolution::new(
        FsmSpec::paper(kind),
        Evaluator::new(env.clone(), train).with_threads(threads),
        GaConfig::paper(120, 4242),
    );
    println!("evolving 8 T-agents on 16x16 (60 train configs, 120 generations)…");
    let outcome = ga.run(|s| {
        if s.generation % 10 == 0 {
            println!(
                "  gen {:3}: best fitness {:9.2}{}",
                s.generation,
                s.best_fitness,
                if s.best_complete { " (completely successful)" } else { "" }
            );
        }
    });
    let best = outcome.best();
    println!("\nevolved genome:\n{}", best.genome);

    // Validate on a held-out set, next to the published FSM.
    let held_out = a2a::sim::paper_config_set(env.lattice, kind, 8, 200, 99)?;
    let validator = Evaluator::new(env, held_out).with_t_max(1000).with_threads(threads);
    let evolved = validator.evaluate(&best.genome);
    let published = validator.evaluate(&best_t_agent());
    println!("held-out validation (200 configs, 8 agents):");
    println!(
        "  evolved   : {:4}/{} solved, mean t_comm {:.2}",
        evolved.successes,
        evolved.total,
        evolved.mean_t_comm.unwrap_or(f64::NAN)
    );
    println!(
        "  published : {:4}/{} solved, mean t_comm {:.2}",
        published.successes,
        published.total,
        published.mean_t_comm.unwrap_or(f64::NAN)
    );
    println!(
        "\nThe paper's FSM was evolved on 1003 configs across 4 independent runs,\n\
         so it should win — but a short run already gets most of the way."
    );
    Ok(())
}

//! Quickstart: run the paper's best T- and S-agents on the same random
//! field layout and compare their communication times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use a2a::prelude::*;

fn main() -> Result<(), SimError> {
    println!("All-to-all communication with CA agents (PaCT 2013 reproduction)\n");

    // 16 agents on a 16x16 cyclic field, one seeded random placement per
    // grid. Each agent starts with one exclusive bit of information and
    // must gather all 16 bits.
    for seed in [1u64, 2, 3] {
        let t = Scenario::new(GridKind::Triangulate).agents(16).seed(seed).run()?;
        let s = Scenario::new(GridKind::Square).agents(16).seed(seed).run()?;
        println!(
            "seed {seed}: T-grid solved in {:>3} steps | S-grid solved in {:>3} steps",
            t.t_comm.expect("published agents are reliable"),
            s.t_comm.expect("published agents are reliable"),
        );
    }

    // The paper's Table 1 reports ~41 (T) vs ~63 (S) on average for 16
    // agents; single fields vary, the average tracks the diameter ratio.
    println!("\nPaper averages for 16 agents: T 41.25, S 63.39 (ratio 0.651).");

    // Inspect one world in detail.
    let world = Scenario::new(GridKind::Triangulate).agents(4).seed(7).world()?;
    println!("\nInitial 4-agent T-world:\n{}", a2a::sim::render_agents(&world));
    Ok(())
}

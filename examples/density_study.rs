//! The paper's density study (Table 1 / Fig. 5) at reduced scale, plus
//! the extra densities 64 and 128 the paper mentions but does not
//! tabulate: communication time vs. number of agents, T vs. S.
//!
//! ```text
//! cargo run --release --example density_study [n_configs]
//! ```

use a2a::analysis::experiments::density::{run_density_comparison, DensityExperiment};
use a2a::ga::default_threads;
use a2a::prelude::*;

fn main() -> Result<(), SimError> {
    let n_random: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);

    let exp = DensityExperiment {
        m: 16,
        // Table 1's densities plus the 64/128 points of the Sect. 4 sweep.
        agent_counts: vec![2, 4, 8, 16, 32, 64, 128, 256],
        n_random,
        seed: 2013,
        t_max: 5000,
        threads: default_threads(),
    };
    println!(
        "communication time vs density, 16x16, {} random configs per point\n",
        n_random
    );
    let cmp = run_density_comparison(&exp)?;
    println!("{}", cmp.to_table());

    // The paper's qualitative findings:
    let t_means: Vec<f64> = cmp.t_grid.points.iter().map(|p| p.times.mean).collect();
    let s_means: Vec<f64> = cmp.s_grid.points.iter().map(|p| p.times.mean).collect();
    println!("observations:");
    println!(
        "  * 4 agents are the slowest density in both grids (paper: 'maxima appear'): \
         T peak at k={}, S peak at k={}",
        cmp.t_grid.points[argmax(&t_means)].agents,
        cmp.s_grid.points[argmax(&s_means)].agents,
    );
    let ratios = cmp.ratios();
    let (lo, hi) = (
        ratios.iter().cloned().fold(f64::INFINITY, f64::min),
        ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    println!(
        "  * T/S ratio stays in [{lo:.3}, {hi:.3}] — the paper expects ≈ 0.666, \
         the diameter ratio of the tori"
    );
    println!("  * fully packed (k=256): T = 9, S = 15 — exactly diameter − 1 exchanges");
    Ok(())
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("means are not NaN"))
        .map(|(i, _)| i)
        .expect("non-empty series")
}
